// Package graph provides the Poisson random graphs the paper studies:
// a deterministic G(n,p) generator (skip-sampling, O(m) time), CSR
// adjacency storage, degree statistics, and a serial reference BFS used
// to validate every distributed run.
package graph

import (
	"fmt"
	"math"
)

// Vertex is a global vertex id. The paper reaches 3.2 billion vertices;
// this reproduction caps at 2^32, far beyond laptop memory anyway.
type Vertex = uint32

// CSR is an undirected graph in compressed sparse row form. Every
// undirected edge {u,v} appears in both adjacency lists.
type CSR struct {
	N   int      // number of vertices
	Off []int64  // len N+1; adjacency of v is Adj[Off[v]:Off[v+1]]
	Adj []Vertex // concatenated adjacency lists
	// W, when non-nil, carries one positive edge weight per Adj entry
	// (both directions of an undirected edge hold the same value). A
	// nil W means the graph is unweighted; shortest-path code treats
	// every edge as weight 1 then.
	W    []uint32
	Seed int64   // generator seed (0 for hand-built graphs)
	K    float64 // requested average degree (0 for hand-built graphs)
}

// Weighted reports whether the graph carries explicit edge weights.
func (g *CSR) Weighted() bool { return g.W != nil }

// EdgeWeights returns the weights parallel to Neighbors(v), or nil for
// an unweighted graph. The slice aliases the graph's storage.
func (g *CSR) EdgeWeights(v Vertex) []uint32 {
	if g.W == nil {
		return nil
	}
	return g.W[g.Off[v]:g.Off[v+1]]
}

// MaxEdgeWeight returns the largest edge weight (1 for unweighted or
// edgeless graphs).
func (g *CSR) MaxEdgeWeight() uint32 {
	max := uint32(1)
	for _, w := range g.W {
		if w > max {
			max = w
		}
	}
	return max
}

// MinEdgeWeight returns the smallest edge weight (1 for unweighted or
// edgeless graphs).
func (g *CSR) MinEdgeWeight() uint32 {
	if len(g.W) == 0 {
		return 1
	}
	min := g.W[0]
	for _, w := range g.W[1:] {
		if w < min {
			min = w
		}
	}
	return min
}

// NumEdges returns the number of undirected edges.
func (g *CSR) NumEdges() int64 { return int64(len(g.Adj)) / 2 }

// Degree returns the degree of v.
func (g *CSR) Degree(v Vertex) int { return int(g.Off[v+1] - g.Off[v]) }

// Neighbors returns the adjacency list of v. The slice aliases the
// graph's storage and must not be modified.
func (g *CSR) Neighbors(v Vertex) []Vertex { return g.Adj[g.Off[v]:g.Off[v+1]] }

// AvgDegree returns the measured average degree.
func (g *CSR) AvgDegree() float64 {
	if g.N == 0 {
		return 0
	}
	return float64(len(g.Adj)) / float64(g.N)
}

// MaxDegree returns the maximum degree.
func (g *CSR) MaxDegree() int {
	max := 0
	for v := 0; v < g.N; v++ {
		if d := g.Degree(Vertex(v)); d > max {
			max = d
		}
	}
	return max
}

// VisitWeightedEdges streams every undirected edge {u, v}, u < v,
// exactly once with its weight (1 for unweighted graphs) — the edge
// source the weight-aware partition loaders consume.
func (g *CSR) VisitWeightedEdges(fn func(u, v Vertex, w uint32)) error {
	for v := 0; v < g.N; v++ {
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			if u := g.Adj[i]; Vertex(v) < u {
				fn(Vertex(v), u, g.weightOf(i))
			}
		}
	}
	return nil
}

// FromEdges builds a CSR from an undirected edge list. Self-loops are
// rejected; duplicate edges are kept (the generator never produces
// them).
func FromEdges(n int, edges [][2]Vertex) (*CSR, error) {
	g := &CSR{N: n, Off: make([]int64, n+1)}
	for _, e := range edges {
		if e[0] == e[1] {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", e[0])
		}
		if int(e[0]) >= n || int(e[1]) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e[0], e[1], n)
		}
		g.Off[e[0]+1]++
		g.Off[e[1]+1]++
	}
	for v := 0; v < n; v++ {
		g.Off[v+1] += g.Off[v]
	}
	g.Adj = make([]Vertex, g.Off[n])
	fill := make([]int64, n)
	for _, e := range edges {
		g.Adj[g.Off[e[0]]+fill[e[0]]] = e[1]
		fill[e[0]]++
		g.Adj[g.Off[e[1]]+fill[e[1]]] = e[0]
		fill[e[1]]++
	}
	return g, nil
}

// DegreeHistogram returns counts of vertices per degree, up to the max
// degree.
func (g *CSR) DegreeHistogram() []int {
	hist := make([]int, g.MaxDegree()+1)
	for v := 0; v < g.N; v++ {
		hist[g.Degree(Vertex(v))]++
	}
	return hist
}

// ExpectedDiameter returns the O(log n / log k) diameter estimate for a
// Poisson random graph (Bollobás 1981, the paper's reference [2]).
func ExpectedDiameter(n int, k float64) float64 {
	if k <= 1 || n <= 1 {
		return math.Inf(1)
	}
	return math.Log(float64(n)) / math.Log(k)
}
