package graph

import (
	"math/rand"
	"testing"
)

func TestPathFromLevelsPathGraph(t *testing.T) {
	g, err := FromEdges(5, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	levels := BFS(g, 0)
	path, err := PathFromLevels(g, levels, 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Vertex{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path %v, want %v", path, want)
		}
	}
	if err := ValidatePath(g, path, 0, 4); err != nil {
		t.Fatal(err)
	}
}

func TestPathFromLevelsRandomGraph(t *testing.T) {
	g, err := Generate(Params{N: 3000, K: 5, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	src := LargestComponentVertex(g)
	levels := BFS(g, src)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 20; trial++ {
		dst := Vertex(rng.Intn(g.N))
		if levels[dst] == Unreached {
			if _, err := PathFromLevels(g, levels, src, dst); err == nil {
				t.Fatal("path to unreached vertex accepted")
			}
			continue
		}
		path, err := PathFromLevels(g, levels, src, dst)
		if err != nil {
			t.Fatal(err)
		}
		if int32(len(path)-1) != levels[dst] {
			t.Fatalf("path length %d, distance %d", len(path)-1, levels[dst])
		}
		if err := ValidatePath(g, path, src, dst); err != nil {
			t.Fatal(err)
		}
		// Shortest: every step descends exactly one level.
		for i, v := range path {
			if levels[v] != int32(i) {
				t.Fatalf("path[%d]=%d at level %d", i, v, levels[v])
			}
		}
	}
}

func TestPathFromLevelsSourceOnly(t *testing.T) {
	g, err := FromEdges(3, [][2]Vertex{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	levels := BFS(g, 0)
	path, err := PathFromLevels(g, levels, 0, 0)
	if err != nil || len(path) != 1 || path[0] != 0 {
		t.Fatalf("trivial path: %v, %v", path, err)
	}
}

func TestPathFromLevelsValidation(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	levels := BFS(g, 0)
	if _, err := PathFromLevels(g, levels[:2], 0, 1); err == nil {
		t.Error("short levels accepted")
	}
	if _, err := PathFromLevels(g, levels, 1, 2); err == nil {
		t.Error("wrong source accepted")
	}
	// Corrupt labeling: orphan level.
	bad := append([]int32(nil), levels...)
	bad[2] = 5
	if _, err := PathFromLevels(g, bad, 0, 2); err == nil {
		t.Error("inconsistent labeling accepted")
	}
}

func TestValidatePathRejectsNonPaths(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidatePath(g, []Vertex{0, 2}, 0, 2); err == nil {
		t.Error("non-edge step accepted")
	}
	if err := ValidatePath(g, []Vertex{0, 1}, 0, 2); err == nil {
		t.Error("wrong endpoint accepted")
	}
	if err := ValidatePath(g, nil, 0, 0); err == nil {
		t.Error("empty path accepted")
	}
	if err := ValidatePath(g, []Vertex{0, 1, 2, 3}, 0, 3); err != nil {
		t.Errorf("valid path rejected: %v", err)
	}
}
