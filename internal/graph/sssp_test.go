package graph

import "testing"

func TestDijkstraMatchesBellmanFord(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g, err := GenerateWeighted(Params{N: 1500, K: 6, Seed: seed},
			WeightSpec{Dist: WeightUniform, MaxWeight: 50, Seed: seed + 100})
		if err != nil {
			t.Fatal(err)
		}
		src := LargestComponentVertex(g)
		dj := Dijkstra(g, src)
		bf, epochs := BellmanFord(g, src)
		for v := range dj {
			if dj[v] != bf[v] {
				t.Fatalf("seed %d: dist[%d]: dijkstra %d != bellman-ford %d", seed, v, dj[v], bf[v])
			}
		}
		if epochs == 0 {
			t.Fatalf("seed %d: bellman-ford reported zero epochs", seed)
		}
	}
}

func TestDijkstraUnitWeightsEqualBFSLevels(t *testing.T) {
	// Unweighted graph: Dijkstra with implicit unit weights is BFS.
	g, err := Generate(Params{N: 3000, K: 5, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	src := LargestComponentVertex(g)
	levels := BFS(g, src)
	dist := Dijkstra(g, src)
	for v := range dist {
		switch {
		case levels[v] == Unreached && dist[v] != MaxDist:
			t.Fatalf("vertex %d: BFS unreached but dist %d", v, dist[v])
		case levels[v] != Unreached && dist[v] != uint32(levels[v]):
			t.Fatalf("vertex %d: level %d but dist %d", v, levels[v], dist[v])
		}
	}
}

func TestDijkstraHandBuilt(t *testing.T) {
	//      5       1
	//  0 ----- 1 ----- 2
	//   \             /
	//    \----- 3 ---/     0-3 weight 1, 3-2 weight 2
	g, err := FromWeightedEdges(4,
		[][2]Vertex{{0, 1}, {1, 2}, {0, 3}, {3, 2}},
		[]uint32{5, 1, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	dist := Dijkstra(g, 0)
	want := []uint32{0, 4, 3, 1} // 0->2 via 3 (1+2), 0->1 via 3,2 (1+2+1)
	for v, d := range dist {
		if d != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, d, want[v])
		}
	}
}

func TestDijkstraDisconnected(t *testing.T) {
	g, err := FromWeightedEdges(4, [][2]Vertex{{0, 1}}, []uint32{3})
	if err != nil {
		t.Fatal(err)
	}
	dist := Dijkstra(g, 0)
	if dist[0] != 0 || dist[1] != 3 || dist[2] != MaxDist || dist[3] != MaxDist {
		t.Fatalf("dist = %v", dist)
	}
}

func TestSaturatingAdd(t *testing.T) {
	if saturatingAdd(MaxDist, 1) != MaxDist {
		t.Fatal("unreachable + w must stay unreachable")
	}
	if saturatingAdd(MaxDist-1, 1) != MaxDist {
		t.Fatal("sum reaching the sentinel must saturate")
	}
	if saturatingAdd(5, 7) != 12 {
		t.Fatal("plain add broken")
	}
}
