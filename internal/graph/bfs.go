package graph

// Unreached marks a vertex not reached by a search.
const Unreached int32 = -1

// BFS runs a serial breadth-first search from src and returns the level
// (graph distance) of every vertex, with Unreached for vertices in
// other components. This is the reference oracle for all distributed
// runs.
func BFS(g *CSR, src Vertex) []int32 {
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = Unreached
	}
	levels[src] = 0
	frontier := []Vertex{src}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []Vertex
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if levels[u] == Unreached {
					levels[u] = depth
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return levels
}

// Distance returns the serial s->t graph distance, or Unreached.
func Distance(g *CSR, s, t Vertex) int32 {
	if s == t {
		return 0
	}
	levels := make([]int32, g.N)
	for i := range levels {
		levels[i] = Unreached
	}
	levels[s] = 0
	frontier := []Vertex{s}
	for depth := int32(1); len(frontier) > 0; depth++ {
		var next []Vertex
		for _, v := range frontier {
			for _, u := range g.Neighbors(v) {
				if levels[u] == Unreached {
					if u == t {
						return depth
					}
					levels[u] = depth
					next = append(next, u)
				}
			}
		}
		frontier = next
	}
	return Unreached
}

// Eccentricity returns the maximum finite level in a BFS from src and
// the number of reached vertices.
func Eccentricity(g *CSR, src Vertex) (maxLevel int32, reached int) {
	for _, l := range BFS(g, src) {
		if l != Unreached {
			reached++
			if l > maxLevel {
				maxLevel = l
			}
		}
	}
	return maxLevel, reached
}

// LargestComponentVertex returns a vertex in the largest connected
// component, found by repeated BFS over unvisited seeds. Experiments
// use it to pick sources that produce meaningful traversals.
func LargestComponentVertex(g *CSR) Vertex {
	visited := make([]bool, g.N)
	best, bestSize := Vertex(0), 0
	for v := 0; v < g.N; v++ {
		if visited[v] {
			continue
		}
		size := 0
		queue := []Vertex{Vertex(v)}
		visited[v] = true
		for len(queue) > 0 {
			x := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			size++
			for _, u := range g.Neighbors(x) {
				if !visited[u] {
					visited[u] = true
					queue = append(queue, u)
				}
			}
		}
		if size > bestSize {
			best, bestSize = Vertex(v), size
		}
	}
	return best
}
