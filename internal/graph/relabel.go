package graph

import "math/rand"

// Relabel returns a copy of g with vertex ids permuted uniformly at
// random (deterministic in seed), plus the permutation used:
// perm[old] = new. The blocked partitionings of §2 assume vertex ids
// spread load evenly across contiguous blocks — true by construction
// for Poisson random graphs, but not for real inputs whose ids carry
// locality. Relabeling restores the balance assumption.
func Relabel(g *CSR, seed int64) (*CSR, []Vertex) {
	perm := make([]Vertex, g.N)
	for i := range perm {
		perm[i] = Vertex(i)
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(g.N, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })

	out := &CSR{N: g.N, Off: make([]int64, g.N+1), Seed: g.Seed, K: g.K}
	for v := 0; v < g.N; v++ {
		out.Off[perm[v]+1] = int64(g.Degree(Vertex(v)))
	}
	for v := 0; v < g.N; v++ {
		out.Off[v+1] += out.Off[v]
	}
	out.Adj = make([]Vertex, len(g.Adj))
	if g.Weighted() {
		out.W = make([]uint32, len(g.W))
	}
	fill := make([]int64, g.N)
	for v := 0; v < g.N; v++ {
		nv := perm[v]
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			slot := out.Off[nv] + fill[nv]
			out.Adj[slot] = perm[g.Adj[i]]
			if out.W != nil {
				out.W[slot] = g.W[i]
			}
			fill[nv]++
		}
	}
	return out, perm
}

// InversePerm returns the inverse permutation: inv[new] = old.
func InversePerm(perm []Vertex) []Vertex {
	inv := make([]Vertex, len(perm))
	for old, nw := range perm {
		inv[nw] = Vertex(old)
	}
	return inv
}
