package graph

import (
	"fmt"
	"math"
)

// Per-edge weights extend the paper's unweighted Poisson workload to
// the shortest-path setting (Δ-stepping SSSP). A weight is a positive
// uint32 attached to each undirected edge; both directions of the CSR
// carry the same value.
//
// Weights are drawn by a deterministic symmetric hash of the edge
// endpoints, so the streaming partition loaders can recompute any
// edge's weight without materializing a global weight list — the same
// property skip-sampling gives the topology.

// WeightDist selects the edge-weight distribution.
type WeightDist int

const (
	// WeightUniform draws integer weights uniformly from [1, MaxWeight].
	WeightUniform WeightDist = iota
	// WeightExponential draws from a truncated exponential with mean
	// MaxWeight/4, shifted to [1, MaxWeight] — the heavy-tailed draw
	// that makes light/heavy edge phases meaningfully different.
	WeightExponential
	// WeightUnit assigns every edge weight 1, reducing shortest paths
	// to BFS levels (the Δ-stepping = BFS property tests rely on it).
	WeightUnit
)

func (d WeightDist) String() string {
	switch d {
	case WeightUniform:
		return "uniform"
	case WeightExponential:
		return "exponential"
	case WeightUnit:
		return "unit"
	default:
		return fmt.Sprintf("WeightDist(%d)", int(d))
	}
}

// DefaultMaxWeight is the weight range used when a WeightSpec leaves
// MaxWeight zero: wide enough that Δ choices spread buckets, small
// enough that distances stay far from the uint32 sentinel.
const DefaultMaxWeight = 256

// WeightSpec describes a deterministic edge-weight assignment.
type WeightSpec struct {
	Dist WeightDist
	// MaxWeight bounds every draw; 0 selects DefaultMaxWeight.
	MaxWeight uint32
	// Seed decorrelates the weights from the topology seed; the same
	// (spec, u, v) always yields the same weight.
	Seed int64
}

func (s WeightSpec) maxWeight() uint32 {
	if s.MaxWeight == 0 {
		return DefaultMaxWeight
	}
	return s.MaxWeight
}

func (s WeightSpec) validate() error {
	if s.MaxWeight > MaxDist/2 {
		return fmt.Errorf("graph: MaxWeight %d too close to the distance sentinel", s.MaxWeight)
	}
	return nil
}

// splitmix64 is the finalizer of the SplitMix64 generator: a cheap
// high-quality 64-bit mix used to hash edge endpoints into draws.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// WeightOf returns the weight of undirected edge {u, v}: symmetric
// (order-insensitive), deterministic in (Seed, u, v), and always in
// [1, MaxWeight].
func (s WeightSpec) WeightOf(u, v Vertex) uint32 {
	if u > v {
		u, v = v, u
	}
	h := splitmix64(uint64(s.Seed)<<1 ^ uint64(u)<<32 ^ uint64(v))
	max := uint64(s.maxWeight())
	switch s.Dist {
	case WeightUnit:
		return 1
	case WeightExponential:
		// Inverse-CDF draw with mean max/4 from a uniform in (0, 1],
		// using the top 53 bits of the hash; truncated to [1, max].
		u01 := float64(h>>11)/(1<<53) + 1.0/(1<<54)
		mean := float64(max) / 4
		if mean < 1 {
			mean = 1
		}
		w := uint64(1 - mean*math.Log(u01))
		if w > max {
			w = max
		}
		return uint32(w)
	default: // WeightUniform
		return uint32(1 + h%max)
	}
}

// GenerateWeighted materializes the Poisson random graph with per-edge
// weights drawn by spec. The topology is identical to Generate(p) —
// weights are a pure overlay keyed on the edge endpoints.
func GenerateWeighted(p Params, spec WeightSpec) (*CSR, error) {
	if err := spec.validate(); err != nil {
		return nil, err
	}
	g, err := Generate(p)
	if err != nil {
		return nil, err
	}
	g.W = make([]uint32, len(g.Adj))
	for v := 0; v < g.N; v++ {
		for i := g.Off[v]; i < g.Off[v+1]; i++ {
			g.W[i] = spec.WeightOf(Vertex(v), g.Adj[i])
		}
	}
	return g, nil
}

// FromWeightedEdges builds a weighted CSR from an undirected edge list
// and a parallel weight slice. Every weight must be positive.
func FromWeightedEdges(n int, edges [][2]Vertex, weights []uint32) (*CSR, error) {
	if len(weights) != len(edges) {
		return nil, fmt.Errorf("graph: %d edges but %d weights", len(edges), len(weights))
	}
	for i, w := range weights {
		if w == 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) has zero weight; weights must be positive",
				edges[i][0], edges[i][1])
		}
	}
	g, err := FromEdges(n, edges)
	if err != nil {
		return nil, err
	}
	g.W = make([]uint32, len(g.Adj))
	// Replay the FromEdges fill order so W lines up with Adj.
	fill := make([]int64, n)
	for i, e := range edges {
		g.W[g.Off[e[0]]+fill[e[0]]] = weights[i]
		fill[e[0]]++
		g.W[g.Off[e[1]]+fill[e[1]]] = weights[i]
		fill[e[1]]++
	}
	return g, nil
}
