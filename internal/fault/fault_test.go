package fault

import (
	"math"
	"strings"
	"testing"
)

func TestDecideDeterministic(t *testing.T) {
	p := &Plan{Seed: 7, PCorrupt: 0.2, PDrop: 0.2, PDuplicate: 0.2, PDelay: 0.2, MaxDelay: 1e-5}
	q := &Plan{Seed: 7, PCorrupt: 0.2, PDrop: 0.2, PDuplicate: 0.2, PDelay: 0.2, MaxDelay: 1e-5}
	counts := map[Kind]int{}
	for seq := uint32(0); seq < 2000; seq++ {
		k1, d1 := p.Decide(0, 1, 3, seq, 0)
		k2, d2 := q.Decide(0, 1, 3, seq, 0)
		if k1 != k2 || d1 != d2 {
			t.Fatalf("seq %d: same plan decided differently: (%v, %v) vs (%v, %v)", seq, k1, d1, k2, d2)
		}
		counts[k1]++
	}
	for _, k := range []Kind{Corrupt, Drop, Duplicate, Delay} {
		// With p = 0.2 each over 2000 trials, all classes appear.
		if counts[k] == 0 {
			t.Errorf("fault class %v never chosen over 2000 messages", k)
		}
	}
}

func TestDecideSeedChangesSchedule(t *testing.T) {
	a := &Plan{Seed: 1, PDrop: 0.5}
	b := &Plan{Seed: 2, PDrop: 0.5}
	same := true
	for seq := uint32(0); seq < 200; seq++ {
		ka, _ := a.Decide(0, 1, 0, seq, 0)
		kb, _ := b.Decide(0, 1, 0, seq, 0)
		if ka != kb {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules over 200 messages")
	}
}

func TestCleanAttemptBoundsBursts(t *testing.T) {
	p := &Plan{Seed: 3, PDrop: 1} // every copy dropped...
	if k, _ := p.Decide(0, 1, 0, 0, 0); k != Drop {
		t.Fatalf("attempt 0: want drop, got %v", k)
	}
	// ...until the default CleanAttempt forces the wire clean.
	if k, _ := p.Decide(0, 1, 0, 0, DefaultCleanAttempt); k != None {
		t.Fatalf("attempt %d: want none, got %v", DefaultCleanAttempt, k)
	}
}

func TestDelayBounded(t *testing.T) {
	p := &Plan{Seed: 11, PDelay: 1, MaxDelay: 5e-5}
	for seq := uint32(0); seq < 500; seq++ {
		k, d := p.Decide(2, 3, 1, seq, 0)
		if k != Delay {
			t.Fatalf("seq %d: want delay, got %v", seq, k)
		}
		if d <= 0 || d > p.MaxDelay {
			t.Fatalf("seq %d: delay %v outside (0, %v]", seq, d, p.MaxDelay)
		}
	}
}

func TestBackoffDoubles(t *testing.T) {
	p := &Plan{BackoffBase: 2e-6}
	for attempt := 1; attempt < 6; attempt++ {
		want := 2e-6 * float64(uint(1)<<uint(attempt-1))
		if got := p.Backoff(attempt); got != want {
			t.Fatalf("backoff(%d) = %v, want %v", attempt, got, want)
		}
	}
}

func TestHoldForOutages(t *testing.T) {
	p := &Plan{Outages: []Outage{
		{Src: -1, Dst: 0, From: 10, Until: 20},
		{Src: 1, Dst: 0, From: 20, Until: 25}, // chains with the first
	}}
	if got := p.HoldForOutages(1, 0, 12); got != 25 {
		t.Fatalf("chained windows: held to %v, want 25", got)
	}
	if got := p.HoldForOutages(2, 0, 12); got != 20 {
		t.Fatalf("single window: held to %v, want 20", got)
	}
	if got := p.HoldForOutages(1, 2, 12); got != 12 {
		t.Fatalf("unmatched link: held to %v, want 12 (untouched)", got)
	}
	if got := p.HoldForOutages(1, 0, 30); got != 30 {
		t.Fatalf("after windows: held to %v, want 30 (untouched)", got)
	}
}

func TestStragglerFactor(t *testing.T) {
	p := &Plan{Stragglers: map[int]float64{2: 1.5, 3: 0.5}}
	if got := p.StragglerFactor(2); got != 1.5 {
		t.Fatalf("rank 2: got %v, want 1.5", got)
	}
	if got := p.StragglerFactor(3); got != 1 {
		t.Fatalf("rank 3: factor <= 1 must be ignored, got %v", got)
	}
	if got := p.StragglerFactor(0); got != 1 {
		t.Fatalf("rank 0: got %v, want 1", got)
	}
	var nilPlan *Plan
	if got := nilPlan.StragglerFactor(0); got != 1 {
		t.Fatalf("nil plan: got %v, want 1", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	spec := "seed=42,corrupt=0.01,drop=0.02,dup=0.005,delay=0.03,maxdelay=5e-05,straggler=1:1.5,outage=*>0@0.0001-0.0003"
	p, err := Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	if p.Seed != 42 || p.PCorrupt != 0.01 || p.PDrop != 0.02 || p.PDuplicate != 0.005 || p.PDelay != 0.03 {
		t.Fatalf("parsed plan wrong: %+v", p)
	}
	if p.MaxDelay != 5e-5 {
		t.Fatalf("maxdelay: got %v", p.MaxDelay)
	}
	if p.Stragglers[1] != 1.5 {
		t.Fatalf("straggler: got %v", p.Stragglers)
	}
	want := Outage{Src: -1, Dst: 0, From: 1e-4, Until: 3e-4}
	if len(p.Outages) != 1 || p.Outages[0] != want {
		t.Fatalf("outage: got %+v", p.Outages)
	}
	back, err := Parse(p.String())
	if err != nil {
		t.Fatalf("re-parsing String(): %v", err)
	}
	if back.String() != p.String() {
		t.Fatalf("round trip changed the plan: %q vs %q", back.String(), p.String())
	}
}

func TestParseDurationsAndCanned(t *testing.T) {
	p, err := Parse("timeout=20us,backoff=5us,attempts=4,clean=2,maxdelay=1ms")
	if err != nil {
		t.Fatal(err)
	}
	near := func(got, want float64) bool { return math.Abs(got-want) < 1e-12 }
	if !near(p.RetryTimeout, 20e-6) || !near(p.BackoffBase, 5e-6) || p.MaxAttempts != 4 || p.CleanAttempt != 2 || !near(p.MaxDelay, 1e-3) {
		t.Fatalf("parsed plan wrong: timeout=%v backoff=%v attempts=%d clean=%d maxdelay=%v",
			p.RetryTimeout, p.BackoffBase, p.MaxAttempts, p.CleanAttempt, p.MaxDelay)
	}
	c, err := Parse("canned:9")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed != 9 || !c.Active() {
		t.Fatalf("canned plan wrong: %+v", c)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"", "bogus", "drop=1.5", "maxdelay=-3us", "straggler=1:0.5",
		"outage=0>1@5-2", "outage=0:1", "frobnicate=1",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q): expected error", spec)
		} else if !strings.HasPrefix(err.Error(), "fault:") {
			t.Errorf("Parse(%q): error %q not prefixed with package name", spec, err)
		}
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	p := &Plan{Seed: 123}
	if p.Active() {
		t.Fatal("zero-probability plan reports Active")
	}
	for seq := uint32(0); seq < 100; seq++ {
		if k, _ := p.Decide(0, 1, 0, seq, 0); k != None {
			t.Fatalf("zero plan injected %v", k)
		}
	}
	var nilPlan *Plan
	if k, _ := nilPlan.Decide(0, 1, 0, 0, 0); k != None {
		t.Fatal("nil plan injected a fault")
	}
}
