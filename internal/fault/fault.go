// Package fault provides a seeded, deterministic fault plan for the
// simulated transport. The comm layer consults the plan at every
// point-to-point message to decide whether the wire corrupts,
// duplicates, drops, or delays that copy, whether a link outage holds
// its departure, and how much slower a straggler rank computes. Every
// decision is a pure hash of (seed, src, dst, tag, seq, attempt) —
// never of wall-clock time or goroutine schedule — so a faulted run is
// exactly as deterministic as a fault-free one: the same plan on the
// same workload produces the same retries at the same simulated times,
// and the PR 5/6 clock-ledger and trace machinery keep auditing it.
//
// Faults cost simulated seconds only. A dropped or corrupted message
// is detected by the receiver (sequence gap / checksum mismatch) and
// recovered with a NACK-driven retransmission whose timeout, backoff,
// and resend wire time are charged to the simulated clock as
// communication time; the host process never sleeps.
package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Kind classifies one wire-level fault decision.
type Kind int

const (
	// None delivers the copy cleanly.
	None Kind = iota
	// Corrupt flips payload bits in flight; the receiver's checksum
	// catches it and triggers a retransmission.
	Corrupt
	// Drop loses the copy on the wire; the receiver's NACK timer
	// detects the sequence gap and triggers a retransmission.
	Drop
	// Duplicate delivers the copy twice; the receiver's sequence
	// counter discards the second copy.
	Duplicate
	// Delay holds the copy on the wire for a bounded extra time; it
	// arrives late but intact (no retransmission).
	Delay
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Corrupt:
		return "corrupt"
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Outage takes one directed link (or, with Src/Dst == -1, a wildcard
// set of links) down for a window of simulated time. Messages whose
// departure falls inside the window are held until it lifts — they
// arrive late but intact, modeling a transient link failure below the
// retransmission layer.
type Outage struct {
	Src, Dst    int // rank endpoints; -1 matches any rank
	From, Until float64
}

// Default protocol parameters, in simulated seconds. The timeout is a
// few times the cost model's per-message overhead scale (BG/L software
// overheads are ~µs), the backoff base one overhead below it.
const (
	DefaultRetryTimeout = 20e-6
	DefaultBackoffBase  = 5e-6
	DefaultMaxAttempts  = 8
	DefaultCleanAttempt = 3
)

// Plan is a complete seeded fault schedule. The zero value injects
// nothing; probabilities select faults per message copy.
type Plan struct {
	// Seed keys every hash decision; two plans with different seeds
	// fault different messages at the same probabilities.
	Seed uint64

	// Per-message fault probabilities in [0, 1]. At most one fault is
	// chosen per copy; the probabilities partition the unit interval
	// in the order corrupt, drop, duplicate, delay.
	PCorrupt   float64
	PDrop      float64
	PDuplicate float64
	PDelay     float64

	// MaxDelay bounds the Delay fault's extra wire time (simulated
	// seconds); the actual delay is hash-uniform in (0, MaxDelay].
	MaxDelay float64

	// RetryTimeout is the simulated time from a detected loss or
	// corruption to the retransmission request reaching the sender (the
	// NACK round trip); BackoffBase scales the exponential backoff
	// (BackoffBase * 2^(attempt-1) before attempt's resend). Zero
	// values select the defaults above.
	RetryTimeout float64
	BackoffBase  float64

	// MaxAttempts bounds the copies tried per message (first send plus
	// retransmissions). Exceeding it is an unrecoverable transport
	// failure: the receiving rank panics and World.Run reports the
	// error. Zero selects DefaultMaxAttempts.
	MaxAttempts int

	// CleanAttempt is the attempt index from which the wire is forced
	// clean, bounding every fault burst (faults are transient, as on
	// the real machine). Zero selects DefaultCleanAttempt; negative
	// disables the bound (useful only for exhaustion tests).
	CleanAttempt int

	// Stragglers maps rank -> compute-slowdown factor (> 1): every
	// compute charge on that rank is scaled by the factor, modeling a
	// slow core. Factors <= 1 are ignored.
	Stragglers map[int]float64

	// Outages lists transient link-down windows.
	Outages []Outage
}

// splitmix64 is the SplitMix64 finalizer — one multiply-xor-shift
// round with strong avalanche, the standard seed-expansion hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash chains the message coordinates through splitmix64.
func (p *Plan) hash(src, dst, tag int, seq uint32, attempt int) uint64 {
	h := splitmix64(p.Seed)
	h = splitmix64(h ^ uint64(uint32(src)))
	h = splitmix64(h ^ uint64(uint32(dst)))
	h = splitmix64(h ^ uint64(uint64(tag)))
	h = splitmix64(h ^ uint64(seq))
	h = splitmix64(h ^ uint64(uint32(attempt)))
	return h
}

// unit maps a hash to [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / (1 << 53) }

// Decide returns the fault injected into one copy of message seq from
// src to dst, plus the extra wire delay when the kind is Delay. The
// attempt index counts copies of the same message (0 = first send);
// attempts at or beyond CleanAttempt are always clean, so any plan
// below the retry budget makes progress.
func (p *Plan) Decide(src, dst, tag int, seq uint32, attempt int) (Kind, float64) {
	if p == nil {
		return None, 0
	}
	clean := p.CleanAttempt
	if clean == 0 {
		clean = DefaultCleanAttempt
	}
	if clean > 0 && attempt >= clean {
		return None, 0
	}
	h := p.hash(src, dst, tag, seq, attempt)
	u := unit(h)
	switch {
	case u < p.PCorrupt:
		return Corrupt, 0
	case u < p.PCorrupt+p.PDrop:
		return Drop, 0
	case u < p.PCorrupt+p.PDrop+p.PDuplicate:
		if attempt > 0 {
			// Duplicating a retransmission adds nothing to coverage;
			// deliver it cleanly instead of re-keying the decision.
			return None, 0
		}
		return Duplicate, 0
	case u < p.PCorrupt+p.PDrop+p.PDuplicate+p.PDelay:
		if p.MaxDelay <= 0 {
			return None, 0
		}
		// A second hash round decorrelates the delay magnitude from
		// the kind decision.
		return Delay, p.MaxDelay * (unit(splitmix64(h)) + 1) / 2
	default:
		return None, 0
	}
}

// Timeout returns the NACK round-trip time.
func (p *Plan) Timeout() float64 {
	if p.RetryTimeout > 0 {
		return p.RetryTimeout
	}
	return DefaultRetryTimeout
}

// Backoff returns the exponential backoff charged before the given
// retransmission attempt (attempt >= 1).
func (p *Plan) Backoff(attempt int) float64 {
	base := p.BackoffBase
	if base <= 0 {
		base = DefaultBackoffBase
	}
	return base * float64(uint64(1)<<uint(attempt-1))
}

// AttemptBudget returns the per-message copy budget.
func (p *Plan) AttemptBudget() int {
	if p.MaxAttempts > 0 {
		return p.MaxAttempts
	}
	return DefaultMaxAttempts
}

// StragglerFactor returns the compute-slowdown factor for a rank
// (1 when the rank is not a straggler).
func (p *Plan) StragglerFactor(rank int) float64 {
	if p == nil {
		return 1
	}
	if f, ok := p.Stragglers[rank]; ok && f > 1 {
		return f
	}
	return 1
}

// HoldForOutages returns the departure time after any link-down
// windows covering (src, dst) at that time have lifted: a message
// departing inside a window is held until the window's end, repeatedly
// if windows chain.
func (p *Plan) HoldForOutages(src, dst int, departure float64) float64 {
	if p == nil || len(p.Outages) == 0 {
		return departure
	}
	for changed := true; changed; {
		changed = false
		for _, o := range p.Outages {
			if o.Src != -1 && o.Src != src {
				continue
			}
			if o.Dst != -1 && o.Dst != dst {
				continue
			}
			if departure >= o.From && departure < o.Until {
				departure = o.Until
				changed = true
			}
		}
	}
	return departure
}

// Active reports whether the plan can inject anything at all.
func (p *Plan) Active() bool {
	if p == nil {
		return false
	}
	if p.PCorrupt > 0 || p.PDrop > 0 || p.PDuplicate > 0 || p.PDelay > 0 {
		return true
	}
	if len(p.Outages) > 0 {
		return true
	}
	for _, f := range p.Stragglers {
		if f > 1 {
			return true
		}
	}
	return false
}

// Canned returns the chaos-smoke plan: every fault class at a rate
// that exercises the recovery protocol hundreds of times on the
// flagship workloads while staying far below the retry budget, one
// straggler, and one early transient outage.
func Canned(seed uint64) *Plan {
	return &Plan{
		Seed:       seed,
		PCorrupt:   0.01,
		PDrop:      0.01,
		PDuplicate: 0.01,
		PDelay:     0.02,
		MaxDelay:   50e-6,
		Stragglers: map[int]float64{1: 1.5},
		Outages:    []Outage{{Src: -1, Dst: 0, From: 100e-6, Until: 300e-6}},
	}
}

// Hostile returns a plan built to defeat the recovery protocol: every
// copy corrupt, the forced-clean bound disabled, and a small attempt
// budget, so the first message exhausts its retries and the receiving
// rank panics. No realistic fault schedule looks like this — it exists
// for the supervision drills (graphd's forced replica panic, the
// budget-exhaustion tests) that need a deterministic engine death.
func Hostile(seed uint64) *Plan {
	return &Plan{Seed: seed, PCorrupt: 1, CleanAttempt: -1, MaxAttempts: 4}
}

// Parse builds a plan from a comma-separated key=value spec, the
// format of bfsrun's -fault flag, e.g.
//
//	seed=42,corrupt=0.01,drop=0.01,dup=0.005,delay=0.02,maxdelay=50us,
//	straggler=1:1.5,outage=*>0@100us-300us
//
// Durations accept s/ms/us/ns suffixes (plain numbers are seconds).
// The spec "canned" (optionally "canned:SEED") selects Canned; the
// spec "hostile" (optionally "hostile:SEED") selects Hostile.
func Parse(spec string) (*Plan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, fmt.Errorf("fault: empty spec")
	}
	if spec == "canned" {
		return Canned(1), nil
	}
	if rest, ok := strings.CutPrefix(spec, "canned:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad canned seed %q: %v", rest, err)
		}
		return Canned(seed), nil
	}
	if spec == "hostile" {
		return Hostile(1), nil
	}
	if rest, ok := strings.CutPrefix(spec, "hostile:"); ok {
		seed, err := strconv.ParseUint(rest, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("fault: bad hostile seed %q: %v", rest, err)
		}
		return Hostile(seed), nil
	}
	p := &Plan{}
	for _, kv := range strings.Split(spec, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("fault: %q is not key=value", kv)
		}
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseUint(val, 10, 64)
		case "corrupt":
			p.PCorrupt, err = parseProb(val)
		case "drop":
			p.PDrop, err = parseProb(val)
		case "dup":
			p.PDuplicate, err = parseProb(val)
		case "delay":
			p.PDelay, err = parseProb(val)
		case "maxdelay":
			p.MaxDelay, err = parseSeconds(val)
		case "timeout":
			p.RetryTimeout, err = parseSeconds(val)
		case "backoff":
			p.BackoffBase, err = parseSeconds(val)
		case "attempts":
			p.MaxAttempts, err = strconv.Atoi(val)
		case "clean":
			p.CleanAttempt, err = strconv.Atoi(val)
		case "straggler":
			err = parseStraggler(p, val)
		case "outage":
			err = parseOutage(p, val)
		default:
			return nil, fmt.Errorf("fault: unknown key %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault: bad %s=%s: %v", key, val, err)
		}
	}
	return p, nil
}

func parseProb(val string) (float64, error) {
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 || f > 1 {
		return 0, fmt.Errorf("probability %v outside [0, 1]", f)
	}
	return f, nil
}

// parseSeconds parses a simulated duration: a float with an optional
// s/ms/us/ns suffix (bare numbers are seconds).
func parseSeconds(val string) (float64, error) {
	scale := 1.0
	switch {
	case strings.HasSuffix(val, "ns"):
		scale, val = 1e-9, strings.TrimSuffix(val, "ns")
	case strings.HasSuffix(val, "us"):
		scale, val = 1e-6, strings.TrimSuffix(val, "us")
	case strings.HasSuffix(val, "ms"):
		scale, val = 1e-3, strings.TrimSuffix(val, "ms")
	case strings.HasSuffix(val, "s"):
		val = strings.TrimSuffix(val, "s")
	}
	f, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if f < 0 {
		return 0, fmt.Errorf("negative duration")
	}
	return f * scale, nil
}

// parseStraggler parses RANK:FACTOR.
func parseStraggler(p *Plan, val string) error {
	r, f, ok := strings.Cut(val, ":")
	if !ok {
		return fmt.Errorf("want RANK:FACTOR")
	}
	rank, err := strconv.Atoi(r)
	if err != nil {
		return err
	}
	factor, err := strconv.ParseFloat(f, 64)
	if err != nil {
		return err
	}
	if factor <= 1 {
		return fmt.Errorf("factor %v must exceed 1", factor)
	}
	if p.Stragglers == nil {
		p.Stragglers = map[int]float64{}
	}
	p.Stragglers[rank] = factor
	return nil
}

// parseOutage parses SRC>DST@FROM-UNTIL with * as a rank wildcard.
func parseOutage(p *Plan, val string) error {
	link, window, ok := strings.Cut(val, "@")
	if !ok {
		return fmt.Errorf("want SRC>DST@FROM-UNTIL")
	}
	s, d, ok := strings.Cut(link, ">")
	if !ok {
		return fmt.Errorf("want SRC>DST@FROM-UNTIL")
	}
	parseRank := func(v string) (int, error) {
		if v == "*" {
			return -1, nil
		}
		return strconv.Atoi(v)
	}
	src, err := parseRank(s)
	if err != nil {
		return err
	}
	dst, err := parseRank(d)
	if err != nil {
		return err
	}
	fs, us, ok := strings.Cut(window, "-")
	if !ok {
		return fmt.Errorf("want FROM-UNTIL window")
	}
	from, err := parseSeconds(fs)
	if err != nil {
		return err
	}
	until, err := parseSeconds(us)
	if err != nil {
		return err
	}
	if until <= from {
		return fmt.Errorf("window %v-%v is empty", from, until)
	}
	p.Outages = append(p.Outages, Outage{Src: src, Dst: dst, From: from, Until: until})
	return nil
}

// String renders the plan back into Parse's spec format (stable field
// order; stragglers sorted by rank).
func (p *Plan) String() string {
	if p == nil {
		return "<nil>"
	}
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	add("corrupt", p.PCorrupt)
	add("drop", p.PDrop)
	add("dup", p.PDuplicate)
	add("delay", p.PDelay)
	add("maxdelay", p.MaxDelay)
	ranks := make([]int, 0, len(p.Stragglers))
	for r := range p.Stragglers {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		parts = append(parts, fmt.Sprintf("straggler=%d:%g", r, p.Stragglers[r]))
	}
	for _, o := range p.Outages {
		fmtRank := func(r int) string {
			if r == -1 {
				return "*"
			}
			return strconv.Itoa(r)
		}
		parts = append(parts, fmt.Sprintf("outage=%s>%s@%g-%g", fmtRank(o.Src), fmtRank(o.Dst), o.From, o.Until))
	}
	return strings.Join(parts, ",")
}
