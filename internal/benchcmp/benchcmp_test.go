package benchcmp

import (
	"math"
	"strings"
	"testing"
)

const sampleDoc = `{
  "n": 1000,
  "runs": [
    {"name": "topdown-auto", "simexec_s": 0.10, "total_words": 500},
    {"name": "dirop-auto", "simexec_s": 0.08, "total_words": 400}
  ],
  "multi_bfs": {
    "multi_simexec_s": 0.5,
    "multi_words": 900,
    "independent_over_multi_words": 3.4
  },
  "per_sweep": [
    {"sweep": 0, "expand_words": 7},
    {"sweep": 1, "expand_words": 9}
  ]
}`

func TestCollect(t *testing.T) {
	pts, err := Collect([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	for key, want := range map[string]float64{
		"n":                           1000,
		"runs/topdown-auto/simexec_s": 0.10, // name-keyed, not index-keyed
		"runs/dirop-auto/total_words": 400,
		"multi_bfs/multi_simexec_s":   0.5,
		"per_sweep/0/expand_words":    7, // no name field: index-keyed
		"per_sweep/1/expand_words":    9,
	} {
		if got, ok := pts[key]; !ok || got != want {
			t.Fatalf("pts[%q] = %g (present %v), want %g\nall: %v", key, got, ok, want, pts)
		}
	}
}

func TestCollectRejectsGarbage(t *testing.T) {
	if _, err := Collect([]byte("not json")); err == nil {
		t.Fatal("garbage collected")
	}
}

func TestGating(t *testing.T) {
	pts, err := Collect([]byte(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	// Gated: 2x simexec_s, 2x total_words, multi_simexec_s, multi_words,
	// 2x expand_words. NOT gated: n, sweep indices, and the
	// independent_over_multi_words ratio.
	if got := Gated(pts); got != 8 {
		t.Fatalf("Gated = %d, want 8", got)
	}
}

func TestCompare(t *testing.T) {
	base := map[string]float64{
		"runs/a/simexec_s":   1.00,
		"runs/a/total_words": 100,
		"runs/b/simexec_s":   2.00,
		"loose/ratio":        5.0, // ungated: may move freely
	}
	tol := Tolerances{Exec: 0.05, Words: 0}

	// Within tolerance, improvements, and ungated noise all pass.
	fresh := map[string]float64{
		"runs/a/simexec_s":   1.04, // +4% < 5%
		"runs/a/total_words": 90,   // improvement
		"runs/b/simexec_s":   1.50, // improvement
		"loose/ratio":        50,
	}
	if regs := Compare(base, fresh, tol); len(regs) != 0 {
		t.Fatalf("clean diff reported regressions: %v", regs)
	}

	// Beyond tolerance fails; exact words gate fails on +1.
	fresh["runs/a/simexec_s"] = 1.06
	fresh["runs/a/total_words"] = 101
	regs := Compare(base, fresh, tol)
	if len(regs) != 2 {
		t.Fatalf("want 2 regressions, got %v", regs)
	}
	if regs[0].Key != "runs/a/simexec_s" || regs[1].Key != "runs/a/total_words" {
		t.Fatalf("regressions out of order: %v", regs)
	}
	if regs[0].RelIncrease < 0.059 || regs[0].RelIncrease > 0.061 {
		t.Fatalf("rel increase %g, want ~0.06", regs[0].RelIncrease)
	}

	// A vanished baseline point is itself a regression.
	delete(fresh, "runs/b/simexec_s")
	regs = Compare(base, fresh, tol)
	if len(regs) != 3 {
		t.Fatalf("missing key not reported: %v", regs)
	}
	var missing *Delta
	for i := range regs {
		if regs[i].Key == "runs/b/simexec_s" {
			missing = &regs[i]
		}
	}
	if missing == nil || !math.IsNaN(missing.Fresh) {
		t.Fatalf("missing key delta: %v", regs)
	}
	if !strings.Contains(missing.String(), "missing") {
		t.Fatalf("missing-point message: %s", missing)
	}
}

func TestCompareZeroBase(t *testing.T) {
	base := map[string]float64{"runs/a/total_words": 0}
	fresh := map[string]float64{"runs/a/total_words": 1}
	if regs := Compare(base, fresh, DefaultTolerances()); len(regs) != 1 || !math.IsInf(regs[0].RelIncrease, 1) {
		t.Fatalf("zero-base growth not flagged: %v", regs)
	}
	fresh["runs/a/total_words"] = 0
	if regs := Compare(base, fresh, DefaultTolerances()); len(regs) != 0 {
		t.Fatalf("zero vs zero flagged: %v", regs)
	}
}

func TestInject(t *testing.T) {
	pts := map[string]float64{
		"runs/a/simexec_s":          1.0,
		"multi_bfs/multi_simexec_s": 2.0,
		"runs/a/total_words":        100,
	}
	Inject(pts, 1.10)
	if pts["runs/a/simexec_s"] != 1.10 || pts["multi_bfs/multi_simexec_s"] != 2.2 {
		t.Fatalf("exec points not scaled: %v", pts)
	}
	if pts["runs/a/total_words"] != 100 {
		t.Fatalf("words point scaled: %v", pts)
	}
	// The injected document must fail against its own baseline — the
	// self-test benchdiff -inject-simexec relies on.
	base := map[string]float64{"runs/a/simexec_s": 1.0}
	if regs := Compare(base, pts, DefaultTolerances()); len(regs) != 1 {
		t.Fatalf("injected regression not caught: %v", regs)
	}
}
