// Package benchcmp is the perf-regression gate behind cmd/benchdiff:
// it flattens benchmark-baseline JSON documents (BENCH_PR*.json) into
// path-keyed metric points and diffs a fresh run against a committed
// baseline under per-metric tolerances.
//
// Flattening is schema-agnostic — any numeric leaf becomes a point —
// so the gate keeps working as later PRs extend the baseline
// documents. Array elements that carry a "name" field are keyed by
// that name instead of their index, so appending or reordering runs
// does not shift every key after them. Two families of leaf fields
// gate the diff: simulated-execution seconds (simexec_s and *_simexec_s,
// tolerance-bounded because code changes legitimately move the
// simulated constants a little) and exchange word counts (total_words,
// multi_words, expand_words, ... — exact by default: word counts are
// deterministic for a fixed workload, so any increase is a real
// regression). Ratio fields (independent_over_multi_words) are never
// gated — a ratio can move in the good direction while ending in a
// gated suffix.
package benchcmp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// The canonical gated leaf fields (Summary's names); gateOf widens
// each to its family.
const (
	KeyExec  = "simexec_s"
	KeyWords = "total_words"
)

// wordKeys are the exact leaf names gated as exchange volume. An
// explicit set rather than a suffix match: ratio fields such as
// independent_over_multi_words also end in "_words" but must not gate.
var wordKeys = map[string]bool{
	KeyWords:            true,
	"multi_words":       true,
	"independent_words": true,
	"expand_words":      true,
	"fold_words":        true,
	"auto_words":        true,
	"hybrid_words":      true,
}

// gate classifies a leaf field name.
type gate int

const (
	gateNone gate = iota
	gateExec
	gateWords
)

func gateOf(l string) gate {
	switch {
	case l == KeyExec || strings.HasSuffix(l, "_"+KeyExec):
		return gateExec
	case wordKeys[l]:
		return gateWords
	}
	return gateNone
}

// Tolerances bounds the allowed relative increase of fresh over base
// per gated metric (0.05 = fresh may run up to 5% slower). Decreases
// always pass.
type Tolerances struct {
	Exec  float64
	Words float64
}

// DefaultTolerances matches the documented gate: simulated execution
// may drift up to 5% before failing, exchange words must not grow.
func DefaultTolerances() Tolerances { return Tolerances{Exec: 0.05, Words: 0} }

// Collect flattens a baseline JSON document into path -> numeric leaf.
// Paths join object keys and array positions with '/'.
func Collect(data []byte) (map[string]float64, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var root any
	if err := dec.Decode(&root); err != nil {
		return nil, fmt.Errorf("benchcmp: %w", err)
	}
	pts := make(map[string]float64)
	walk(root, "", pts)
	return pts, nil
}

func walk(v any, path string, out map[string]float64) {
	switch t := v.(type) {
	case map[string]any:
		for k, c := range t {
			walk(c, join(path, k), out)
		}
	case []any:
		for i, c := range t {
			seg := strconv.Itoa(i)
			if m, ok := c.(map[string]any); ok {
				if name, ok := m["name"].(string); ok && name != "" {
					seg = name
				}
			}
			walk(c, join(path, seg), out)
		}
	case json.Number:
		if f, err := t.Float64(); err == nil {
			out[path] = f
		}
	}
}

func join(path, seg string) string {
	if path == "" {
		return seg
	}
	return path + "/" + seg
}

// leaf returns the final path segment.
func leaf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// Delta is one gated point that regressed (or vanished: Fresh is NaN
// when the fresh document no longer has the key).
type Delta struct {
	Key         string
	Base, Fresh float64
	RelIncrease float64 // (Fresh-Base)/Base
	Tolerance   float64
}

func (d Delta) String() string {
	if math.IsNaN(d.Fresh) {
		return fmt.Sprintf("%s: baseline point missing from fresh run (base %g)", d.Key, d.Base)
	}
	return fmt.Sprintf("%s: %g -> %g (+%.2f%%, tolerance %.2f%%)",
		d.Key, d.Base, d.Fresh, 100*d.RelIncrease, 100*d.Tolerance)
}

// Compare diffs every gated point of base against fresh and returns
// the regressions, sorted by key. Keys present only in fresh are
// ignored (later PRs add runs); keys present only in base are
// reported — a baseline point silently vanishing would otherwise
// let the gate rot.
func Compare(base, fresh map[string]float64, tol Tolerances) []Delta {
	keys := make([]string, 0, len(base))
	for k := range base {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	var regs []Delta
	for _, k := range keys {
		var t float64
		switch gateOf(leaf(k)) {
		case gateExec:
			t = tol.Exec
		case gateWords:
			t = tol.Words
		default:
			continue
		}
		b := base[k]
		f, ok := fresh[k]
		if !ok {
			regs = append(regs, Delta{Key: k, Base: b, Fresh: math.NaN(), Tolerance: t})
			continue
		}
		var rel float64
		switch {
		case b != 0:
			rel = (f - b) / b
		case f > 0:
			rel = math.Inf(1) // base 0, fresh positive: unbounded increase
		}
		if rel > t {
			regs = append(regs, Delta{Key: k, Base: b, Fresh: f, RelIncrease: rel, Tolerance: t})
		}
	}
	return regs
}

// Gated counts the points of a collection the gate would compare.
func Gated(pts map[string]float64) int {
	n := 0
	for k := range pts {
		if gateOf(leaf(k)) != gateNone {
			n++
		}
	}
	return n
}

// Inject multiplies every exec-gated point by factor — the
// deliberate-regression self-test behind benchdiff -inject-simexec,
// proving the gate actually fails when simulated time grows.
func Inject(pts map[string]float64, factor float64) {
	for k := range pts {
		if gateOf(leaf(k)) == gateExec {
			pts[k] *= factor
		}
	}
}
