package graphd

import (
	"errors"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// This file holds the client-side resilience pieces: the seeded jitter
// stream that decorrelates retry storms, the per-host circuit breaker
// that stops hammering a dead server, and the hedger that races a
// duplicate read-only query against a stuck one. All three are
// deterministic given their seed/inputs, so the chaos harness can pin
// exact behavior in tests.

// jitterRNG is a mutex-guarded splitmix64 stream. Deliberately seeded
// and local (no global rand): two clients with the same seed produce
// the same delays, which is what lets tests pin the jitter schedule.
type jitterRNG struct {
	mu sync.Mutex
	s  uint64
}

func newJitterRNG(seed uint64) *jitterRNG { return &jitterRNG{s: seed} }

func (r *jitterRNG) next() uint64 {
	r.mu.Lock()
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	r.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// durationN returns a uniform duration in [0, max).
func (r *jitterRNG) durationN(max time.Duration) time.Duration {
	if max <= 0 {
		return 0
	}
	return time.Duration(r.next() % uint64(max))
}

// errBreakerOpen is what an attempt sees when the breaker refuses to
// send: retryable (the retry sleep doubles as the cooldown wait), so a
// recovered server is rediscovered by the half-open probe.
var errBreakerOpen = errors.New("graphd: circuit breaker open")

// breaker is a three-state circuit breaker over one host. Closed
// passes everything and counts consecutive transport failures; at
// threshold it opens and fails fast without touching the network; after
// cooldown it half-opens and lets exactly ONE probe through — success
// closes it, failure re-opens for another cooldown.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int // 0 closed, 1 open, 2 half-open
	fails    int
	openedAt time.Time
	probing  bool
}

const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether an attempt may hit the network right now.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probing = true
		return true
	default: // half-open: one probe at a time
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records an attempt that reached the server (any HTTP answer
// counts — even a 503 proves the host is alive).
func (b *breaker) success() {
	b.mu.Lock()
	b.state = breakerClosed
	b.fails = 0
	b.probing = false
	b.mu.Unlock()
}

// failure records a transport failure (no HTTP answer at all).
func (b *breaker) failure() {
	b.mu.Lock()
	b.fails++
	b.probing = false
	if b.state == breakerHalfOpen || b.fails >= b.threshold {
		b.state = breakerOpen
		b.openedAt = time.Now()
	}
	b.mu.Unlock()
}

// hedgeWindow is how many recent latencies the hedger remembers when
// estimating its trigger quantile.
const hedgeWindow = 128

// hedger decides when a BFS query has been in flight suspiciously long
// and deserves a racing duplicate: past the configured quantile of the
// last hedgeWindow observed latencies (never below the floor). Only
// idempotent reads may hedge — every graphd query is one.
type hedger struct {
	quantile float64
	floor    time.Duration

	mu   sync.Mutex
	lat  []time.Duration
	idx  int
	full bool

	hedged atomic.Int64
}

func newHedger(quantile float64, floor time.Duration) *hedger {
	return &hedger{quantile: quantile, floor: floor, lat: make([]time.Duration, hedgeWindow)}
}

// delay returns how long to wait before firing the hedge.
func (h *hedger) delay() time.Duration {
	h.mu.Lock()
	n := h.idx
	if h.full {
		n = len(h.lat)
	}
	snap := make([]time.Duration, n)
	copy(snap, h.lat[:n])
	h.mu.Unlock()
	if n == 0 {
		return h.floor
	}
	sort.Slice(snap, func(i, j int) bool { return snap[i] < snap[j] })
	k := int(h.quantile * float64(n))
	if k >= n {
		k = n - 1
	}
	if d := snap[k]; d > h.floor {
		return d
	}
	return h.floor
}

// observe records one successful query's latency.
func (h *hedger) observe(d time.Duration) {
	h.mu.Lock()
	h.lat[h.idx] = d
	h.idx++
	if h.idx == len(h.lat) {
		h.idx = 0
		h.full = true
	}
	h.mu.Unlock()
}

// Hedged reports how many duplicate requests were fired.
func (h *hedger) Hedged() int64 { return h.hedged.Load() }
