package graphd

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	bgl "repro"
)

// testGraph builds the small deterministic workload the batcher tests
// share.
func testGraph(t *testing.T, n int) *bgl.Graph {
	t.Helper()
	g, err := bgl.Generate(n, 8, 3)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return g
}

// newTestServer builds a server over a 2x2 mesh with the given
// batching knobs and registers its drain with the test cleanup.
func newTestServer(t *testing.T, g *bgl.Graph, mutate func(*Config)) *Server {
	t.Helper()
	cfg := Config{Graph: g, R: 2, C: 2}
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(s.Close)
	return s
}

// recvAnswer reads one batch answer with a generous deadline so a
// wedged batcher fails the test instead of hanging it.
func recvAnswer(t *testing.T, ch <-chan batchAnswer) batchAnswer {
	t.Helper()
	select {
	case ans := <-ch:
		return ans
	case <-time.After(30 * time.Second):
		t.Fatal("no batch answer within 30s")
		panic("unreachable")
	}
}

// checkOracle verifies a batched answer equals an independent run.
func checkOracle(t *testing.T, g *bgl.Graph, src bgl.Vertex, ans batchAnswer) {
	t.Helper()
	if ans.err != nil {
		t.Fatalf("source %d: batch error: %v", src, ans.err)
	}
	want := g.SerialBFS(src)
	if len(ans.levels) != len(want) {
		t.Fatalf("source %d: %d levels, oracle has %d", src, len(ans.levels), len(want))
	}
	for v := range want {
		if ans.levels[v] != want[v] {
			t.Fatalf("source %d: level[%d] = %d, oracle %d", src, v, ans.levels[v], want[v])
		}
	}
}

func TestBatcherSingleQuery(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) { c.Window = 5 * time.Millisecond })
	ch, err := s.batcher.submit(7, time.Time{})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ans := recvAnswer(t, ch)
	checkOracle(t, g, 7, ans)
	if ans.stats.BatchSize != 1 || ans.stats.BatchLanes != 1 {
		t.Fatalf("lone query got batch size %d lanes %d, want 1/1", ans.stats.BatchSize, ans.stats.BatchLanes)
	}
	if ans.stats.SimExecS <= 0 || ans.stats.Words <= 0 {
		t.Fatalf("per-query stats not filled: %+v", ans.stats)
	}
}

// TestBatcherSizeCapTrigger holds the window effectively open forever;
// only the size cap can fire the batch, and it must.
func TestBatcherSizeCapTrigger(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) {
		c.Window = time.Hour
		c.MaxBatch = 4
	})
	chans := make([]<-chan batchAnswer, 4)
	for i := range chans {
		ch, err := s.batcher.submit(bgl.Vertex(10*(i+1)), time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		ans := recvAnswer(t, ch)
		checkOracle(t, g, bgl.Vertex(10*(i+1)), ans)
		if ans.stats.BatchSize != 4 || ans.stats.BatchLanes != 4 {
			t.Fatalf("query %d: batch size %d lanes %d, want 4/4", i, ans.stats.BatchSize, ans.stats.BatchLanes)
		}
	}
	if got := s.batcher.Batches(); got != 1 {
		t.Fatalf("size-cap run produced %d batches, want 1", got)
	}
}

// TestBatcherWindowExpiry submits fewer queries than the cap; only the
// window can fire the batch.
func TestBatcherWindowExpiry(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) { c.Window = 30 * time.Millisecond })
	srcs := []bgl.Vertex{3, 44, 178}
	chans := make([]<-chan batchAnswer, len(srcs))
	for i, src := range srcs {
		ch, err := s.batcher.submit(src, time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		ans := recvAnswer(t, ch)
		checkOracle(t, g, srcs[i], ans)
		if ans.stats.BatchSize != 3 || ans.stats.BatchLanes != 3 {
			t.Fatalf("query %d: batch size %d lanes %d, want 3/3", i, ans.stats.BatchSize, ans.stats.BatchLanes)
		}
	}
	if got := s.batcher.Batches(); got != 1 {
		t.Fatalf("window-expiry run produced %d batches, want 1", got)
	}
}

// TestBatcherDuplicateSources: two queries for the same source must
// share one lane, and both get the full correct answer.
func TestBatcherDuplicateSources(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) { c.Window = 30 * time.Millisecond })
	srcs := []bgl.Vertex{42, 42, 7}
	chans := make([]<-chan batchAnswer, len(srcs))
	for i, src := range srcs {
		ch, err := s.batcher.submit(src, time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		ans := recvAnswer(t, ch)
		checkOracle(t, g, srcs[i], ans)
		if ans.stats.BatchSize != 3 || ans.stats.BatchLanes != 2 {
			t.Fatalf("query %d: batch size %d lanes %d, want 3 queries over 2 lanes",
				i, ans.stats.BatchSize, ans.stats.BatchLanes)
		}
	}
}

// TestBatcherFullAndOverflow: exactly 64 distinct sources fill one
// sweep; a 65th overflows into a second.
func TestBatcherFullAndOverflow(t *testing.T) {
	g := testGraph(t, 400)
	for _, tc := range []struct {
		queries, wantBatches int
	}{
		{bgl.MaxLanes, 1},
		{bgl.MaxLanes + 1, 2},
	} {
		t.Run(fmt.Sprintf("queries=%d", tc.queries), func(t *testing.T) {
			s := newTestServer(t, g, func(c *Config) { c.Window = 50 * time.Millisecond })
			chans := make([]<-chan batchAnswer, tc.queries)
			for i := range chans {
				ch, err := s.batcher.submit(bgl.Vertex(i), time.Time{})
				if err != nil {
					t.Fatalf("submit %d: %v", i, err)
				}
				chans[i] = ch
			}
			lanesSeen := map[int]bool{}
			for i, ch := range chans {
				ans := recvAnswer(t, ch)
				checkOracle(t, g, bgl.Vertex(i), ans)
				lanesSeen[ans.stats.BatchLanes] = true
			}
			if got := s.batcher.Batches(); got != int64(tc.wantBatches) {
				t.Fatalf("%d queries produced %d batches, want %d", tc.queries, got, tc.wantBatches)
			}
			if !lanesSeen[bgl.MaxLanes] {
				t.Fatalf("no query rode a full %d-lane sweep (lanes seen: %v)", bgl.MaxLanes, lanesSeen)
			}
			if tc.queries > bgl.MaxLanes && !lanesSeen[1] {
				t.Fatalf("overflow query did not run in its own 1-lane sweep (lanes seen: %v)", lanesSeen)
			}
		})
	}
}

// TestBatcherShutdownMidWindow: closing the batcher while a window is
// open fires the pending batch immediately — admitted queries are
// answered, not dropped — and later submits are refused.
func TestBatcherShutdownMidWindow(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) { c.Window = time.Hour })
	srcs := []bgl.Vertex{5, 99}
	chans := make([]<-chan batchAnswer, len(srcs))
	for i, src := range srcs {
		ch, err := s.batcher.submit(src, time.Time{})
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		chans[i] = ch
	}
	closed := make(chan struct{})
	go func() {
		s.batcher.close()
		close(closed)
	}()
	for i, ch := range chans {
		ans := recvAnswer(t, ch)
		checkOracle(t, g, srcs[i], ans)
		if ans.stats.BatchSize != 2 {
			t.Fatalf("drained batch size %d, want 2", ans.stats.BatchSize)
		}
	}
	select {
	case <-closed:
	case <-time.After(30 * time.Second):
		t.Fatal("batcher.close did not return after draining")
	}
	if _, err := s.batcher.submit(1, time.Time{}); err != ErrDraining {
		t.Fatalf("submit after close: err = %v, want ErrDraining", err)
	}
}

// TestBatcherDemuxPanicIsolated: a panic while demultiplexing one
// lane's answer (here: the sweep returned fewer level arrays than
// lanes) must not strand the other riders — they get a descriptive
// error instead of waiting forever.
func TestBatcherDemuxPanicIsolated(t *testing.T) {
	short := func(sources []bgl.Vertex, _ time.Time) ([][]int32, sweepStats, error) {
		// One array short: the highest lane's demux indexes past the end.
		return make([][]int32, len(sources)-1), sweepStats{}, nil
	}
	b := newBatcher(time.Hour, 2, short, nil) // window never expires; size cap fires
	ch1, err := b.submit(1, time.Time{})
	if err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	ch2, err := b.submit(2, time.Time{}) // second distinct source: batch fires
	if err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	a1, a2 := recvAnswer(t, ch1), recvAnswer(t, ch2)
	if a1.err != nil {
		t.Fatalf("lane 0 (inside the short answer) got error %v, want its levels", a1.err)
	}
	if a2.err == nil {
		t.Fatal("lane 1 (past the short answer) got no error")
	}
	if !strings.Contains(a2.err.Error(), "demux panicked") {
		t.Fatalf("lane 1 error %q does not name the demux panic", a2.err)
	}
	done := make(chan struct{})
	go func() { b.close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("batcher close hung after a demux panic (wg leak)")
	}
}

// TestBatcherCloseRace hammers close against concurrent submitters and
// expiring window timers (run under -race): every accepted query gets
// exactly one answer, every refused submit reports ErrDraining, and
// close returns.
func TestBatcherCloseRace(t *testing.T) {
	g := testGraph(t, 200)
	for round := 0; round < 5; round++ {
		s := newTestServer(t, g, func(c *Config) {
			c.Window = 200 * time.Microsecond // fast timers racing the close
		})
		var wg sync.WaitGroup
		answers := make(chan error, 64)
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					ch, err := s.batcher.submit(bgl.Vertex(w*8+i), time.Time{})
					if err != nil {
						if err != ErrDraining {
							answers <- fmt.Errorf("submit: %v", err)
						}
						return // draining: later submits only get more of the same
					}
					ans := recvAnswer(t, ch)
					answers <- ans.err
				}
			}(w)
		}
		time.Sleep(time.Duration(round) * 300 * time.Microsecond)
		s.batcher.close()
		wg.Wait()
		close(answers)
		for err := range answers {
			if err != nil {
				t.Fatalf("round %d: accepted query answered with %v", round, err)
			}
		}
	}
}
