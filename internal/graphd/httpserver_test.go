package graphd

import (
	"bufio"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestHTTPServerSlowLoris: a client that sends a partial request line
// and then stalls is cut off by ReadHeaderTimeout instead of pinning a
// connection open indefinitely.
func TestHTTPServerSlowLoris(t *testing.T) {
	hs := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
	}))
	hs.ReadHeaderTimeout = 150 * time.Millisecond // keep the test quick
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	// Dribble a partial header and go silent.
	start := time.Now()
	if _, err := conn.Write([]byte("POST /v1/bfs HTTP/1.1\r\nHost: x\r\nContent-")); err != nil {
		t.Fatalf("write: %v", err)
	}
	// The server must terminate the connection (Go answers 408 and
	// closes) once ReadHeaderTimeout fires; reaching our own 5s read
	// deadline instead would mean the loris held its slot.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	raw, err := io.ReadAll(conn)
	if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("connection still open 5s after the header stalled; ReadHeaderTimeout did not fire")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("connection lived %v on a stalled header, want ~ReadHeaderTimeout", elapsed)
	}
	if len(raw) > 0 && !strings.Contains(string(raw), "HTTP/1.1 4") {
		// Go sends a parting 4xx (408, or 400 for the half header)
		// before closing; any 2xx would mean the request was served.
		t.Fatalf("server's parting answer %q is not a 4xx cutoff", raw)
	}
}

// TestHTTPServerStillServes: the hardened wrapper serves a normal
// request exactly like a bare http.Server.
func TestHTTPServerStillServes(t *testing.T) {
	hs := NewHTTPServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = io.WriteString(w, "pong")
	}))
	if hs.ReadHeaderTimeout != DefaultReadHeaderTimeout || hs.ReadTimeout != DefaultReadTimeout ||
		hs.IdleTimeout != DefaultIdleTimeout {
		t.Fatalf("wrapper timeouts %v/%v/%v differ from the defaults",
			hs.ReadHeaderTimeout, hs.ReadTimeout, hs.IdleTimeout)
	}
	if hs.WriteTimeout != 0 {
		t.Fatal("wrapper sets a WriteTimeout; a slow sweep's response would be cut mid-body")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	go func() { _ = hs.Serve(ln) }()
	t.Cleanup(func() { _ = hs.Close() })

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /ping HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatalf("write: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	resp, err := http.ReadResponse(bufio.NewReader(conn), nil)
	if err != nil {
		t.Fatalf("read response: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "pong") {
		t.Fatalf("wrapped server answered %d %q, want 200 pong", resp.StatusCode, body)
	}
}
