package graphd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Server is a graphd instance: the graph distributed over a pool of
// engine replicas, the dynamic batcher in front of them, the bounded
// worker queue for non-batchable queries, and the HTTP surface.
//
//	POST /v1/bfs    single-source BFS (batched into MultiBFS sweeps)
//	POST /v1/path   shortest path s→t (worker queue)
//	POST /v1/sssp   Δ-stepping distances (worker queue)
//	GET  /v1/stats  service statistics
//	GET  /metrics   the metrics registry (text; ?format=json for JSON)
//	GET  /healthz   liveness (503 while draining)
type Server struct {
	cfg     Config
	engines chan *engine
	batcher *batcher
	reg     *metrics.Registry
	mux     *http.ServeMux
	start   time.Time

	mu       sync.RWMutex // guards draining + workCh sends vs Close
	draining bool
	workCh   chan func()
	workerWG sync.WaitGroup
	closed   chan struct{}

	waiting  atomic.Int64 // admitted, unanswered batched BFS queries
	inflight atomic.Int64 // all admitted, unanswered queries

	// Replica supervision. stopCh wakes sleeping rebuild loops when the
	// server drains; supervisorWG tracks them so Close can join. live /
	// quarantined count replica states; sweepSeq numbers BFS sweeps for
	// the one-shot chaos drill.
	stopCh       chan struct{}
	supervisorWG sync.WaitGroup
	live         atomic.Int64
	quarantined  atomic.Int64
	sweepSeq     atomic.Int64

	faultMu     sync.Mutex
	faultTotals bgl.FaultStats

	nBFS, nPath, nSSSP *metrics.Counter
	nQueries           *metrics.Counter
	nRejected          *metrics.Counter
	nErrors            *metrics.Counter
	nDeadline          *metrics.Counter
	nPanics            *metrics.Counter
	nRebuilds          *metrics.Counter
	nFaultInjected     *metrics.Counter
	nFaultRetries      *metrics.Counter
	gQuarantined       *metrics.Gauge
	hQueueWait         *metrics.Histogram
	hLatency           *metrics.Histogram
}

// NewServer validates cfg, distributes the graph over cfg.Replicas
// engine copies, and returns a ready (but not yet listening) server;
// mount Handler on any http.Server. Configuration the library cannot
// lay out — a mesh with more ranks than the graph has vertices, an
// unknown partitioning — returns the library's own descriptive error.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engines, err := buildEngines(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		engines: make(chan *engine, len(engines)),
		reg:     cfg.Metrics,
		start:   time.Now(),
		workCh:  make(chan func(), cfg.QueueDepth),
		closed:  make(chan struct{}),
		stopCh:  make(chan struct{}),
	}
	for _, e := range engines {
		s.engines <- e
	}
	s.live.Store(int64(len(engines)))
	s.batcher = newBatcher(cfg.Window, cfg.MaxBatch, s.sweepBFS, s.reg)
	s.nBFS = s.reg.Counter("graphd_bfs_queries_total")
	s.nPath = s.reg.Counter("graphd_path_queries_total")
	s.nSSSP = s.reg.Counter("graphd_sssp_queries_total")
	s.nQueries = s.reg.Counter("graphd_queries_total")
	s.nRejected = s.reg.Counter("graphd_rejected_total")
	s.nErrors = s.reg.Counter("graphd_errors_total")
	s.nDeadline = s.reg.Counter("graphd_deadline_exceeded_total")
	s.nPanics = s.reg.Counter("graphd_engine_panics_total")
	s.nRebuilds = s.reg.Counter("graphd_replica_rebuilds_total")
	s.nFaultInjected = s.reg.Counter("graphd_faults_injected_total")
	s.nFaultRetries = s.reg.Counter("graphd_fault_retries_total")
	s.gQuarantined = s.reg.Gauge("graphd_replicas_quarantined")
	s.hQueueWait = s.reg.Histogram("graphd_queue_wait_seconds", metrics.TimeBuckets)
	s.hLatency = s.reg.Histogram("graphd_latency_seconds", metrics.TimeBuckets)
	for i := 0; i < cfg.QueryWorkers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for job := range s.workCh {
				job()
			}
		}()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/bfs", s.handleBFS)
	s.mux.HandleFunc("/v1/path", s.handlePath)
	s.mux.HandleFunc("/v1/sssp", s.handleSSSP)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", metrics.Handler(s.reg))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: no new queries are admitted (503), the
// pending batch fires immediately, the worker queue runs dry, and
// Close blocks until every admitted query has been answered. Safe to
// call more than once. Stop the HTTP listener first (http.Server
// Shutdown) or alongside — handlers already past admission finish
// normally.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.closed
		return
	}
	s.draining = true
	close(s.workCh)
	s.mu.Unlock()
	// Wake sleeping rebuild loops first: an in-flight query blocked on
	// the engine pool may be waiting for the supervisor's replacement.
	close(s.stopCh)
	s.batcher.close()
	s.workerWG.Wait()
	s.supervisorWG.Wait()
	close(s.closed)
}

// searchOpts are the run options every sweep and query uses: the
// server's wire codec and core model, the shared registry, and (when
// configured) the deterministic fault plan.
func (s *Server) searchOpts(extra ...bgl.Option) []bgl.Option {
	opts := []bgl.Option{bgl.WithWire(s.cfg.Wire), bgl.WithMetrics(s.reg)}
	if s.cfg.Cores > 1 {
		opts = append(opts, bgl.WithCores(s.cfg.Cores))
	}
	if s.cfg.Workers > 1 {
		opts = append(opts, bgl.WithWorkers(s.cfg.Workers))
	}
	if s.cfg.Fault != nil {
		opts = append(opts, bgl.WithFault(s.cfg.Fault))
	}
	return append(opts, extra...)
}

// --- deadlines -----------------------------------------------------

// deadlineGrace is how much past its own wall deadline a handler waits
// for the engine's cooperative cancel to deliver partial statistics
// before answering 504 on its own timer. The cancel fires at the next
// level/epoch boundary, so the grace only needs to cover one boundary.
const deadlineGrace = 200 * time.Millisecond

// errDeadline marks a run stopped by its deadline or simulated-exec
// budget, carrying the partial progress for the 504 body. It unwraps
// to the engine's *bgl.Canceled so engineFailed never mistakes a
// deadline for a crashed replica.
type errDeadline struct {
	cxl   *bgl.Canceled
	stats PartialStats
}

func (e *errDeadline) Error() string { return e.cxl.Error() }
func (e *errDeadline) Unwrap() error { return e.cxl }

// queryDeadline maps a request's timeout_ms and the server-side cap to
// one wall deadline (zero = unbounded). A request may tighten the
// server cap but never loosen it. Negative timeouts are a 400 (already
// written when ok is false).
func (s *Server) queryDeadline(w http.ResponseWriter, timeoutMS int) (time.Time, bool) {
	if timeoutMS < 0 {
		s.writeError(w, http.StatusBadRequest, "timeout_ms must be non-negative, got %d", timeoutMS)
		return time.Time{}, false
	}
	d := time.Duration(timeoutMS) * time.Millisecond
	if s.cfg.MaxQueryWall > 0 && (d == 0 || d > s.cfg.MaxQueryWall) {
		d = s.cfg.MaxQueryWall
	}
	if d == 0 {
		return time.Time{}, true
	}
	return time.Now().Add(d), true
}

// deadlineOpts converts a wall deadline plus the server's simulated
// budget into engine run options; empty when both are off, so
// unbounded serving stays byte-identical to earlier releases.
func (s *Server) deadlineOpts(deadline time.Time) []bgl.Option {
	var opts []bgl.Option
	if !deadline.IsZero() {
		opts = append(opts, bgl.WithDeadline(deadline))
	}
	if s.cfg.MaxSimExec > 0 {
		opts = append(opts, bgl.WithSimBudget(s.cfg.MaxSimExec))
	}
	return opts
}

// wrapDeadline converts a cooperative-cancel error into an errDeadline
// carrying the run's partial progress; every other error (including
// nil) passes through untouched.
func wrapDeadline(err error, sim, wall float64) error {
	var cxl *bgl.Canceled
	if err == nil || !errors.As(err, &cxl) {
		return err
	}
	return &errDeadline{cxl: cxl, stats: PartialStats{
		Unit: cxl.Unit, Done: cxl.Done, SimExecS: sim, WallS: wall,
	}}
}

// writeDeadline answers a deadline-exceeded query: 504 with a
// descriptive body and, when the engines canceled cooperatively, the
// partial progress. Deliberately NOT an nErrors increment — running
// out of budget is a client outcome, not a server failure.
func (s *Server) writeDeadline(w http.ResponseWriter, msg string, partial *PartialStats) {
	s.nDeadline.Inc()
	writeJSON(w, http.StatusGatewayTimeout, ErrorResponse{
		Error:            msg,
		DeadlineExceeded: true,
		Partial:          partial,
	})
}

// --- engine pool and replica supervision ---------------------------

// engineFailed reports whether a run's error means the replica itself
// is suspect (a rank panic, an exhausted retry budget) as opposed to a
// clean outcome: nil, or a cooperative deadline cancel.
func engineFailed(err error) bool {
	if err == nil {
		return false
	}
	var cxl *bgl.Canceled
	return !errors.As(err, &cxl)
}

// runEngine borrows an engine, runs fn on it under panic isolation,
// and decides the engine's fate: a clean run (or a cooperative cancel)
// returns it to the pool; a panic or engine failure quarantines it and
// hands the slot to the supervisor for an asynchronous rebuild.
func (s *Server) runEngine(fn func(e *engine) error) error {
	e := <-s.engines
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("graphd: engine %d panicked: %v", e.idx, r)
			}
		}()
		return fn(e)
	}()
	if engineFailed(err) {
		s.quarantineEngine(e)
	} else {
		s.engines <- e
	}
	return err
}

// quarantineEngine takes a failed replica out of the pool and spawns
// its rebuild goroutine.
func (s *Server) quarantineEngine(e *engine) {
	s.nPanics.Inc()
	s.live.Add(-1)
	s.gQuarantined.Set(float64(s.quarantined.Add(1)))
	s.supervisorWG.Add(1)
	go s.rebuildReplica(e.idx)
}

// rebuildReplica is the supervisor loop for one quarantined slot: wait
// a backoff, rebuild the engine from the config, return it to the
// pool. Build failures double the backoff up to RebuildBackoffMax.
// When the server begins draining mid-backoff the loop makes one final
// immediate attempt — an in-flight query blocked on the pool may need
// the replacement to finish — then gives up.
func (s *Server) rebuildReplica(idx int) {
	defer s.supervisorWG.Done()
	backoff := s.cfg.RebuildBackoff
	for {
		select {
		case <-time.After(backoff):
		case <-s.stopCh:
			if e, err := buildEngine(s.cfg, idx); err == nil {
				s.restoreEngine(e)
			}
			return
		}
		e, err := buildEngine(s.cfg, idx)
		if err == nil {
			s.restoreEngine(e)
			return
		}
		backoff *= 2
		if backoff > s.cfg.RebuildBackoffMax {
			backoff = s.cfg.RebuildBackoffMax
		}
	}
}

// restoreEngine returns a freshly rebuilt replica to the pool.
func (s *Server) restoreEngine(e *engine) {
	s.engines <- e
	s.live.Add(1)
	s.gQuarantined.Set(float64(s.quarantined.Add(-1)))
	s.nRebuilds.Inc()
}

// recordFaults folds one run's fault/recovery counters into the
// server-lifetime totals /v1/stats and /metrics serve.
func (s *Server) recordFaults(fs bgl.FaultStats) {
	if fs.Zero() {
		return
	}
	s.faultMu.Lock()
	s.faultTotals.Add(fs)
	s.faultMu.Unlock()
	s.nFaultInjected.Add(int64(fs.Injected()))
	s.nFaultRetries.Add(int64(fs.Retries))
}

// --- sweeps --------------------------------------------------------

// sweepBFS executes one batch: a single distinct source runs a plain
// BFS (no lane-mask overhead), two or more share one MultiBFS sweep
// sequence. Either way each source's levels are identical to an
// independent run — the MultiBFS contract. A sweep whose replica dies
// under it (the one-shot chaos drill, or a fault plan beyond the retry
// budget) is retried once on a healthy engine, so the riders never see
// the casualty.
func (s *Server) sweepBFS(sources []bgl.Vertex, deadline time.Time) ([][]int32, sweepStats, error) {
	seq := s.sweepSeq.Add(1)
	hostile := s.cfg.ChaosPanicSweep > 0 && seq == int64(s.cfg.ChaosPanicSweep)
	levels, st, err := s.trySweep(sources, deadline, hostile)
	if engineFailed(err) && !s.isDraining() {
		levels, st, err = s.trySweep(sources, deadline, false)
	}
	return levels, st, err
}

// trySweep runs the batch once on one borrowed engine.
func (s *Server) trySweep(sources []bgl.Vertex, deadline time.Time, hostile bool) ([][]int32, sweepStats, error) {
	var levels [][]int32
	var st sweepStats
	err := s.runEngine(func(e *engine) error {
		opts := s.searchOpts(s.deadlineOpts(deadline)...)
		if hostile {
			opts = append(opts, bgl.WithFault(bgl.HostileFaultPlan(uint64(e.idx)+1)))
		}
		if len(sources) == 1 {
			res, err := e.cl.BFS(e.dg, sources[0], opts...)
			if res != nil {
				s.recordFaults(res.Faults)
				levels = [][]int32{res.Levels}
				st = sweepStats{
					SimExecS: res.SimTime, SimCommS: res.SimComm,
					Words: res.TotalExpandWords + res.TotalFoldWords,
					WallS: res.Wall.Seconds(),
				}
				return wrapDeadline(err, res.SimTime, res.Wall.Seconds())
			}
			return err
		}
		mres, err := e.cl.MultiBFS(e.dg, sources, opts...)
		if mres != nil {
			s.recordFaults(mres.Faults)
			levels = mres.LaneLevels
			st = sweepStats{
				SimExecS: mres.SimTime, SimCommS: mres.SimComm,
				Words: mres.TotalExpandWords + mres.TotalFoldWords,
				WallS: mres.Wall.Seconds(),
			}
			return wrapDeadline(err, mres.SimTime, mres.Wall.Seconds())
		}
		return err
	})
	if err != nil {
		return nil, sweepStats{}, err
	}
	return levels, st, nil
}

// isDraining reports whether Close has begun.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// --- HTTP plumbing -------------------------------------------------

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError answers a failure as ErrorResponse JSON.
func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusServiceUnavailable {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.nRejected.Inc()
	}
	if code >= 500 {
		s.nErrors.Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeRequest parses a strict JSON POST body into dst: wrong method,
// malformed JSON, unknown fields, and trailing garbage are all
// descriptive 4xx answers, never 500s.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "%s needs POST, got %s", r.URL.Path, r.Method)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "malformed request body: trailing data after the JSON object")
		return false
	}
	return true
}

// vertexArg validates one request vertex: present and inside [0, n).
func (s *Server) vertexArg(w http.ResponseWriter, name string, v *int, required bool) (bgl.Vertex, bool) {
	n := s.cfg.Graph.N()
	if v == nil {
		if required {
			s.writeError(w, http.StatusBadRequest, "missing %q: give a vertex id in [0, %d)", name, n)
			return 0, false
		}
		return 0, true
	}
	if *v < 0 || *v >= n {
		s.writeError(w, http.StatusBadRequest, "%s %d out of range: the graph has vertices [0, %d)", name, *v, n)
		return 0, false
	}
	return bgl.Vertex(*v), true
}

// admit performs the common admission steps shared by every query
// handler; on success the caller must call the returned func when the
// query is answered.
func (s *Server) admit(w http.ResponseWriter, kind *metrics.Counter) (func(), bool) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	kind.Inc()
	s.nQueries.Inc()
	s.inflight.Add(1)
	return func() { s.inflight.Add(-1) }, true
}

// submitWork tries to enqueue one non-batchable query; a full queue is
// an admission failure (503), not a wait.
func (s *Server) submitWork(job func()) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	select {
	case s.workCh <- job:
		return true
	default:
		return false
	}
}

// --- handlers ------------------------------------------------------

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req BFSRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, false)
	if !ok {
		return
	}
	deadline, ok := s.queryDeadline(w, req.TimeoutMS)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nBFS)
	if !ok {
		return
	}
	defer done()
	if s.waiting.Load() >= int64(s.cfg.MaxWaiting) {
		s.writeError(w, http.StatusServiceUnavailable,
			"batch backlog full (%d queries waiting); retry shortly", s.cfg.MaxWaiting)
		return
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	ch, err := s.batcher.submit(src, deadline)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var ans batchAnswer
	if deadline.IsZero() {
		ans = <-ch
	} else {
		timer := time.NewTimer(time.Until(deadline) + deadlineGrace)
		select {
		case ans = <-ch:
			timer.Stop()
		case <-timer.C:
			// The shared sweep is still running for patient riders; this
			// query's own budget is spent. The buffered answer channel
			// means the batcher never blocks on us.
			s.writeDeadline(w, fmt.Sprintf(
				"bfs from %d: query deadline exceeded (timeout %dms)", src, req.TimeoutMS), nil)
			return
		}
	}
	if ans.err != nil {
		var edl *errDeadline
		if errors.As(ans.err, &edl) {
			s.writeDeadline(w, fmt.Sprintf(
				"bfs from %d: query deadline exceeded: %v", src, edl), &edl.stats)
			return
		}
		s.writeError(w, http.StatusInternalServerError, "bfs from %d failed: %v", src, ans.err)
		return
	}
	resp := BFSResponse{Source: int(src), Stats: ans.stats}
	for _, l := range ans.levels {
		if l != bgl.Unreached {
			resp.Reached++
		}
	}
	if req.Target != nil {
		d := ans.levels[tgt]
		found := d != bgl.Unreached
		resp.Found, resp.Distance = &found, &d
	}
	if req.Levels {
		resp.Levels = ans.levels
	}
	s.hQueueWait.Observe(ans.stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req PathRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, true)
	if !ok {
		return
	}
	deadline, ok := s.queryDeadline(w, req.TimeoutMS)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nPath)
	if !ok {
		return
	}
	defer done()
	type out struct {
		path []bgl.Vertex
		res  *bgl.Result
		err  error
	}
	enq := time.Now()
	ch := make(chan out, 1)
	ok = s.submitWork(func() {
		var o out
		s.runEngine(func(e *engine) error {
			p, res, err := e.cl.Path(e.dg, src, tgt, s.searchOpts(s.deadlineOpts(deadline)...)...)
			if res == nil {
				// No result at all: the run itself died (rank panic,
				// exhausted retry budget) — let runEngine quarantine.
				o = out{err: err}
				return err
			}
			s.recordFaults(res.Faults)
			// A canceled run hands back partial levels; not-reachable
			// and reconstruction errors are answers, not failures.
			o = out{path: p, res: res, err: wrapDeadline(err, res.SimTime, res.Wall.Seconds())}
			var edl *errDeadline
			if errors.As(o.err, &edl) {
				return edl
			}
			return nil
		})
		ch <- o
	})
	if !ok {
		s.writeError(w, http.StatusServiceUnavailable,
			"query queue full (%d deep); retry shortly", s.cfg.QueueDepth)
		return
	}
	var o out
	if deadline.IsZero() {
		o = <-ch
	} else {
		timer := time.NewTimer(time.Until(deadline) + deadlineGrace)
		select {
		case o = <-ch:
			timer.Stop()
		case <-timer.C:
			s.writeDeadline(w, fmt.Sprintf(
				"path %d→%d: query deadline exceeded (timeout %dms)", src, tgt, req.TimeoutMS), nil)
			return
		}
	}
	if o.err != nil {
		var edl *errDeadline
		if errors.As(o.err, &edl) {
			s.writeDeadline(w, fmt.Sprintf(
				"path %d→%d: query deadline exceeded: %v", src, tgt, edl), &edl.stats)
			return
		}
		if o.res == nil || o.res.Found {
			s.writeError(w, http.StatusInternalServerError, "path %d→%d failed: %v", src, tgt, o.err)
			return
		}
	}
	resp := PathResponse{Source: int(src), Target: int(tgt), Distance: -1}
	if o.res != nil {
		resp.Stats = QueryStats{
			BatchSize: 1, BatchLanes: 1,
			SimExecS: o.res.SimTime, SimCommS: o.res.SimComm,
			Words: o.res.TotalExpandWords + o.res.TotalFoldWords,
			WallS: o.res.Wall.Seconds(),
		}
		resp.Stats.QueueWaitS = time.Since(enq).Seconds() - o.res.Wall.Seconds()
		if resp.Stats.QueueWaitS < 0 {
			resp.Stats.QueueWaitS = 0
		}
	}
	if o.err == nil {
		resp.Found = true
		resp.Distance = int32(len(o.path) - 1)
		resp.Path = make([]int, len(o.path))
		for i, v := range o.path {
			resp.Path[i] = int(v)
		}
	}
	s.hQueueWait.Observe(resp.Stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req SSSPRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, false)
	if !ok {
		return
	}
	deadline, ok := s.queryDeadline(w, req.TimeoutMS)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nSSSP)
	if !ok {
		return
	}
	defer done()
	type out struct {
		res *bgl.SSSPResult
		err error
	}
	enq := time.Now()
	ch := make(chan out, 1)
	ok = s.submitWork(func() {
		var o out
		s.runEngine(func(e *engine) error {
			res, err := e.cl.SSSP(e.dg, src, s.searchOpts(append(s.deadlineOpts(deadline), bgl.WithDelta(req.Delta))...)...)
			if res == nil {
				o = out{err: err}
				return err
			}
			s.recordFaults(res.Faults)
			o = out{res: res, err: wrapDeadline(err, res.SimTime, res.Wall.Seconds())}
			var edl *errDeadline
			if errors.As(o.err, &edl) {
				return edl
			}
			return o.err
		})
		ch <- o
	})
	if !ok {
		s.writeError(w, http.StatusServiceUnavailable,
			"query queue full (%d deep); retry shortly", s.cfg.QueueDepth)
		return
	}
	var o out
	if deadline.IsZero() {
		o = <-ch
	} else {
		timer := time.NewTimer(time.Until(deadline) + deadlineGrace)
		select {
		case o = <-ch:
			timer.Stop()
		case <-timer.C:
			s.writeDeadline(w, fmt.Sprintf(
				"sssp from %d: query deadline exceeded (timeout %dms)", src, req.TimeoutMS), nil)
			return
		}
	}
	if o.err != nil {
		var edl *errDeadline
		if errors.As(o.err, &edl) {
			s.writeDeadline(w, fmt.Sprintf(
				"sssp from %d: query deadline exceeded: %v", src, edl), &edl.stats)
			return
		}
		s.writeError(w, http.StatusInternalServerError, "sssp from %d failed: %v", src, o.err)
		return
	}
	resp := SSSPResponse{
		Source:  int(src),
		Reached: o.res.Reached(),
		Stats: QueryStats{
			BatchSize: 1, BatchLanes: 1,
			SimExecS: o.res.SimTime, SimCommS: o.res.SimComm,
			Words: o.res.TotalWords(), WallS: o.res.Wall.Seconds(),
		},
	}
	resp.Stats.QueueWaitS = time.Since(enq).Seconds() - o.res.Wall.Seconds()
	if resp.Stats.QueueWaitS < 0 {
		resp.Stats.QueueWaitS = 0
	}
	if req.Target != nil {
		d := o.res.Dist[tgt]
		found := d != graph.MaxDist
		resp.Found, resp.Distance = &found, &d
	}
	if req.Dists {
		resp.Dists = o.res.Dist
	}
	s.hQueueWait.Observe(resp.Stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "/v1/stats needs GET, got %s", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

// handleHealthz is the three-state liveness probe: "ok" (200) with a
// full replica pool, "degraded" (200 — still serving, a load balancer
// should not evict) while quarantined replicas rebuild, "down"/
// "draining" (503) when no replica is live or shutdown began. The 503s
// are plain health documents, not ErrorResponses — probes are not
// query traffic and must not skew the rejected/error counters.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{Status: "draining"})
		return
	}
	q := int(s.quarantined.Load())
	if s.live.Load() <= 0 {
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{Status: "down", Quarantined: q})
		return
	}
	if q > 0 {
		writeJSON(w, http.StatusOK, HealthzResponse{Status: "degraded", Quarantined: q})
		return
	}
	writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok"})
}

// Stats snapshots the service statistics the /v1/stats endpoint serves.
func (s *Server) Stats() StatsResponse {
	g := s.cfg.Graph
	st := StatsResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Graph: GraphInfo{
			N: g.N(), Edges: g.NumEdges(), Weighted: g.Weighted(),
			Mesh:      fmt.Sprintf("%dx%d", s.cfg.R, s.cfg.C),
			Partition: s.cfg.Partition.String(),
			Wire:      s.cfg.Wire.String(),
			Replicas:  s.cfg.Replicas,
		},
		Batching: BatchingInfo{
			WindowS:    s.cfg.Window.Seconds(),
			MaxBatch:   s.cfg.MaxBatch,
			MaxWaiting: s.cfg.MaxWaiting,
			QueueDepth: s.cfg.QueueDepth,
		},
		Queries: QueryCounts{
			BFS:              s.nBFS.Value(),
			Path:             s.nPath.Value(),
			SSSP:             s.nSSSP.Value(),
			Batches:          s.batcher.Batches(),
			BatchedQueries:   s.batcher.BatchedQueries(),
			Rejected:         s.nRejected.Value(),
			Errors:           s.nErrors.Value(),
			DeadlineExceeded: s.nDeadline.Value(),
			Inflight:         s.inflight.Load(),
		},
		Replicas: ReplicaInfo{
			Configured:  s.cfg.Replicas,
			Live:        int(s.live.Load()),
			Quarantined: int(s.quarantined.Load()),
			Panics:      s.nPanics.Value(),
			Rebuilds:    s.nRebuilds.Value(),
		},
	}
	if st.Queries.Batches > 0 {
		st.Queries.MeanBatchSize = float64(st.Queries.BatchedQueries) / float64(st.Queries.Batches)
	}
	s.faultMu.Lock()
	faults := s.faultTotals
	s.faultMu.Unlock()
	if s.cfg.Fault != nil || !faults.Zero() {
		fi := &FaultInfo{
			Injected:      faults.Injected(),
			Retries:       faults.Retries,
			ChecksumFails: faults.ChecksumFails,
			DupsDiscarded: faults.DupsDiscarded,
			RetrySeconds:  faults.RetrySeconds,
		}
		if s.cfg.Fault != nil {
			fi.Plan = s.cfg.Fault.String()
		}
		st.Faults = fi
	}
	return st
}
