package graphd

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/graph"
	"repro/internal/metrics"
)

// Server is a graphd instance: the graph distributed over a pool of
// engine replicas, the dynamic batcher in front of them, the bounded
// worker queue for non-batchable queries, and the HTTP surface.
//
//	POST /v1/bfs    single-source BFS (batched into MultiBFS sweeps)
//	POST /v1/path   shortest path s→t (worker queue)
//	POST /v1/sssp   Δ-stepping distances (worker queue)
//	GET  /v1/stats  service statistics
//	GET  /metrics   the metrics registry (text; ?format=json for JSON)
//	GET  /healthz   liveness (503 while draining)
type Server struct {
	cfg     Config
	engines chan *engine
	batcher *batcher
	reg     *metrics.Registry
	mux     *http.ServeMux
	start   time.Time

	mu       sync.RWMutex // guards draining + workCh sends vs Close
	draining bool
	workCh   chan func()
	workerWG sync.WaitGroup
	closed   chan struct{}

	waiting  atomic.Int64 // admitted, unanswered batched BFS queries
	inflight atomic.Int64 // all admitted, unanswered queries

	nBFS, nPath, nSSSP *metrics.Counter
	nQueries           *metrics.Counter
	nRejected          *metrics.Counter
	nErrors            *metrics.Counter
	hQueueWait         *metrics.Histogram
	hLatency           *metrics.Histogram
}

// NewServer validates cfg, distributes the graph over cfg.Replicas
// engine copies, and returns a ready (but not yet listening) server;
// mount Handler on any http.Server. Configuration the library cannot
// lay out — a mesh with more ranks than the graph has vertices, an
// unknown partitioning — returns the library's own descriptive error.
func NewServer(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	engines, err := buildEngines(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		engines: make(chan *engine, len(engines)),
		reg:     cfg.Metrics,
		start:   time.Now(),
		workCh:  make(chan func(), cfg.QueueDepth),
		closed:  make(chan struct{}),
	}
	for _, e := range engines {
		s.engines <- e
	}
	s.batcher = newBatcher(cfg.Window, cfg.MaxBatch, s.sweepBFS, s.reg)
	s.nBFS = s.reg.Counter("graphd_bfs_queries_total")
	s.nPath = s.reg.Counter("graphd_path_queries_total")
	s.nSSSP = s.reg.Counter("graphd_sssp_queries_total")
	s.nQueries = s.reg.Counter("graphd_queries_total")
	s.nRejected = s.reg.Counter("graphd_rejected_total")
	s.nErrors = s.reg.Counter("graphd_errors_total")
	s.hQueueWait = s.reg.Histogram("graphd_queue_wait_seconds", metrics.TimeBuckets)
	s.hLatency = s.reg.Histogram("graphd_latency_seconds", metrics.TimeBuckets)
	for i := 0; i < cfg.QueryWorkers; i++ {
		s.workerWG.Add(1)
		go func() {
			defer s.workerWG.Done()
			for job := range s.workCh {
				job()
			}
		}()
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/bfs", s.handleBFS)
	s.mux.HandleFunc("/v1/path", s.handlePath)
	s.mux.HandleFunc("/v1/sssp", s.handleSSSP)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.Handle("/metrics", metrics.Handler(s.reg))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	return s, nil
}

// Handler returns the server's HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the server: no new queries are admitted (503), the
// pending batch fires immediately, the worker queue runs dry, and
// Close blocks until every admitted query has been answered. Safe to
// call more than once. Stop the HTTP listener first (http.Server
// Shutdown) or alongside — handlers already past admission finish
// normally.
func (s *Server) Close() {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		<-s.closed
		return
	}
	s.draining = true
	close(s.workCh)
	s.mu.Unlock()
	s.batcher.close()
	s.workerWG.Wait()
	close(s.closed)
}

// searchOpts are the run options every sweep and query uses: the
// server's wire codec and core model, plus the shared registry.
func (s *Server) searchOpts(extra ...bgl.Option) []bgl.Option {
	opts := []bgl.Option{bgl.WithWire(s.cfg.Wire), bgl.WithMetrics(s.reg)}
	if s.cfg.Cores > 1 {
		opts = append(opts, bgl.WithCores(s.cfg.Cores))
	}
	if s.cfg.Workers > 1 {
		opts = append(opts, bgl.WithWorkers(s.cfg.Workers))
	}
	return append(opts, extra...)
}

// acquire borrows an engine from the pool (blocking until one is
// idle); the returned func gives it back.
func (s *Server) acquire() (*engine, func()) {
	e := <-s.engines
	return e, func() { s.engines <- e }
}

// sweepBFS executes one batch: a single distinct source runs a plain
// BFS (no lane-mask overhead), two or more share one MultiBFS sweep
// sequence. Either way each source's levels are identical to an
// independent run — the MultiBFS contract.
func (s *Server) sweepBFS(sources []bgl.Vertex) ([][]int32, sweepStats, error) {
	e, release := s.acquire()
	defer release()
	if len(sources) == 1 {
		res, err := e.cl.BFS(e.dg, sources[0], s.searchOpts()...)
		if err != nil {
			return nil, sweepStats{}, err
		}
		return [][]int32{res.Levels}, sweepStats{
			SimExecS: res.SimTime, SimCommS: res.SimComm,
			Words: res.TotalExpandWords + res.TotalFoldWords,
			WallS: res.Wall.Seconds(),
		}, nil
	}
	mres, err := e.cl.MultiBFS(e.dg, sources, s.searchOpts()...)
	if err != nil {
		return nil, sweepStats{}, err
	}
	return mres.LaneLevels, sweepStats{
		SimExecS: mres.SimTime, SimCommS: mres.SimComm,
		Words: mres.TotalExpandWords + mres.TotalFoldWords,
		WallS: mres.Wall.Seconds(),
	}, nil
}

// --- HTTP plumbing -------------------------------------------------

// writeJSON answers with a JSON body.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError answers a failure as ErrorResponse JSON.
func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	if code == http.StatusServiceUnavailable {
		secs := int(s.cfg.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		s.nRejected.Inc()
	}
	if code >= 500 {
		s.nErrors.Inc()
	}
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeRequest parses a strict JSON POST body into dst: wrong method,
// malformed JSON, unknown fields, and trailing garbage are all
// descriptive 4xx answers, never 500s.
func (s *Server) decodeRequest(w http.ResponseWriter, r *http.Request, dst any) bool {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		s.writeError(w, http.StatusMethodNotAllowed, "%s needs POST, got %s", r.URL.Path, r.Method)
		return false
	}
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		s.writeError(w, http.StatusBadRequest, "malformed request body: %v", err)
		return false
	}
	if dec.More() {
		s.writeError(w, http.StatusBadRequest, "malformed request body: trailing data after the JSON object")
		return false
	}
	return true
}

// vertexArg validates one request vertex: present and inside [0, n).
func (s *Server) vertexArg(w http.ResponseWriter, name string, v *int, required bool) (bgl.Vertex, bool) {
	n := s.cfg.Graph.N()
	if v == nil {
		if required {
			s.writeError(w, http.StatusBadRequest, "missing %q: give a vertex id in [0, %d)", name, n)
			return 0, false
		}
		return 0, true
	}
	if *v < 0 || *v >= n {
		s.writeError(w, http.StatusBadRequest, "%s %d out of range: the graph has vertices [0, %d)", name, *v, n)
		return 0, false
	}
	return bgl.Vertex(*v), true
}

// admit performs the common admission steps shared by every query
// handler; on success the caller must call the returned func when the
// query is answered.
func (s *Server) admit(w http.ResponseWriter, kind *metrics.Counter) (func(), bool) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return nil, false
	}
	kind.Inc()
	s.nQueries.Inc()
	s.inflight.Add(1)
	return func() { s.inflight.Add(-1) }, true
}

// submitWork tries to enqueue one non-batchable query; a full queue is
// an admission failure (503), not a wait.
func (s *Server) submitWork(job func()) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		return false
	}
	select {
	case s.workCh <- job:
		return true
	default:
		return false
	}
}

// --- handlers ------------------------------------------------------

func (s *Server) handleBFS(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req BFSRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, false)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nBFS)
	if !ok {
		return
	}
	defer done()
	if s.waiting.Load() >= int64(s.cfg.MaxWaiting) {
		s.writeError(w, http.StatusServiceUnavailable,
			"batch backlog full (%d queries waiting); retry shortly", s.cfg.MaxWaiting)
		return
	}
	s.waiting.Add(1)
	defer s.waiting.Add(-1)
	ch, err := s.batcher.submit(src)
	if err != nil {
		s.writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ans := <-ch
	if ans.err != nil {
		s.writeError(w, http.StatusInternalServerError, "bfs from %d failed: %v", src, ans.err)
		return
	}
	resp := BFSResponse{Source: int(src), Stats: ans.stats}
	for _, l := range ans.levels {
		if l != bgl.Unreached {
			resp.Reached++
		}
	}
	if req.Target != nil {
		d := ans.levels[tgt]
		found := d != bgl.Unreached
		resp.Found, resp.Distance = &found, &d
	}
	if req.Levels {
		resp.Levels = ans.levels
	}
	s.hQueueWait.Observe(ans.stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handlePath(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req PathRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, true)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nPath)
	if !ok {
		return
	}
	defer done()
	type out struct {
		path []bgl.Vertex
		res  *bgl.Result
		err  error
	}
	enq := time.Now()
	ch := make(chan out, 1)
	ok = s.submitWork(func() {
		e, release := s.acquire()
		defer release()
		p, res, err := e.cl.Path(e.dg, src, tgt, s.searchOpts()...)
		ch <- out{p, res, err}
	})
	if !ok {
		s.writeError(w, http.StatusServiceUnavailable,
			"query queue full (%d deep); retry shortly", s.cfg.QueueDepth)
		return
	}
	o := <-ch
	if o.err != nil && (o.res == nil || o.res.Found) {
		s.writeError(w, http.StatusInternalServerError, "path %d→%d failed: %v", src, tgt, o.err)
		return
	}
	resp := PathResponse{Source: int(src), Target: int(tgt), Distance: -1}
	if o.res != nil {
		resp.Stats = QueryStats{
			BatchSize: 1, BatchLanes: 1,
			SimExecS: o.res.SimTime, SimCommS: o.res.SimComm,
			Words: o.res.TotalExpandWords + o.res.TotalFoldWords,
			WallS: o.res.Wall.Seconds(),
		}
		resp.Stats.QueueWaitS = time.Since(enq).Seconds() - o.res.Wall.Seconds()
		if resp.Stats.QueueWaitS < 0 {
			resp.Stats.QueueWaitS = 0
		}
	}
	if o.err == nil {
		resp.Found = true
		resp.Distance = int32(len(o.path) - 1)
		resp.Path = make([]int, len(o.path))
		for i, v := range o.path {
			resp.Path[i] = int(v)
		}
	}
	s.hQueueWait.Observe(resp.Stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSSSP(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	var req SSSPRequest
	if !s.decodeRequest(w, r, &req) {
		return
	}
	src, ok := s.vertexArg(w, "source", req.Source, true)
	if !ok {
		return
	}
	tgt, ok := s.vertexArg(w, "target", req.Target, false)
	if !ok {
		return
	}
	done, ok := s.admit(w, s.nSSSP)
	if !ok {
		return
	}
	defer done()
	type out struct {
		res *bgl.SSSPResult
		err error
	}
	enq := time.Now()
	ch := make(chan out, 1)
	ok = s.submitWork(func() {
		e, release := s.acquire()
		defer release()
		res, err := e.cl.SSSP(e.dg, src, s.searchOpts(bgl.WithDelta(req.Delta))...)
		ch <- out{res, err}
	})
	if !ok {
		s.writeError(w, http.StatusServiceUnavailable,
			"query queue full (%d deep); retry shortly", s.cfg.QueueDepth)
		return
	}
	o := <-ch
	if o.err != nil {
		s.writeError(w, http.StatusInternalServerError, "sssp from %d failed: %v", src, o.err)
		return
	}
	resp := SSSPResponse{
		Source:  int(src),
		Reached: o.res.Reached(),
		Stats: QueryStats{
			BatchSize: 1, BatchLanes: 1,
			SimExecS: o.res.SimTime, SimCommS: o.res.SimComm,
			Words: o.res.TotalWords(), WallS: o.res.Wall.Seconds(),
		},
	}
	resp.Stats.QueueWaitS = time.Since(enq).Seconds() - o.res.Wall.Seconds()
	if resp.Stats.QueueWaitS < 0 {
		resp.Stats.QueueWaitS = 0
	}
	if req.Target != nil {
		d := o.res.Dist[tgt]
		found := d != graph.MaxDist
		resp.Found, resp.Distance = &found, &d
	}
	if req.Dists {
		resp.Dists = o.res.Dist
	}
	s.hQueueWait.Observe(resp.Stats.QueueWaitS)
	s.hLatency.Observe(time.Since(t0).Seconds())
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		s.writeError(w, http.StatusMethodNotAllowed, "/v1/stats needs GET, got %s", r.Method)
		return
	}
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	draining := s.draining
	s.mu.RUnlock()
	if draining {
		s.writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// Stats snapshots the service statistics the /v1/stats endpoint serves.
func (s *Server) Stats() StatsResponse {
	g := s.cfg.Graph
	st := StatsResponse{
		UptimeS: time.Since(s.start).Seconds(),
		Graph: GraphInfo{
			N: g.N(), Edges: g.NumEdges(), Weighted: g.Weighted(),
			Mesh:      fmt.Sprintf("%dx%d", s.cfg.R, s.cfg.C),
			Partition: s.cfg.Partition.String(),
			Wire:      s.cfg.Wire.String(),
			Replicas:  s.cfg.Replicas,
		},
		Batching: BatchingInfo{
			WindowS:    s.cfg.Window.Seconds(),
			MaxBatch:   s.cfg.MaxBatch,
			MaxWaiting: s.cfg.MaxWaiting,
			QueueDepth: s.cfg.QueueDepth,
		},
		Queries: QueryCounts{
			BFS:            s.nBFS.Value(),
			Path:           s.nPath.Value(),
			SSSP:           s.nSSSP.Value(),
			Batches:        s.batcher.Batches(),
			BatchedQueries: s.batcher.BatchedQueries(),
			Rejected:       s.nRejected.Value(),
			Errors:         s.nErrors.Value(),
			Inflight:       s.inflight.Load(),
		},
	}
	if st.Queries.Batches > 0 {
		st.Queries.MeanBatchSize = float64(st.Queries.BatchedQueries) / float64(st.Queries.Batches)
	}
	return st
}
