// Package graphd is the long-lived graph-query service: a server that
// distributes a graph over the simulated machine once at startup and
// then answers concurrent BFS / shortest-path / Δ-stepping queries over
// HTTP/JSON, plus the well-typed client the load generator and tests
// share.
//
// The core of the service is a dynamic batcher: concurrent
// single-source BFS queries that arrive within a configurable window
// (or up to the 64-lane MultiBFS capacity, whichever fills first)
// coalesce into ONE multi-source sweep sequence, and each caller gets
// its own lane's levels back — identical to an independent run, but the
// batch moves strictly fewer wire words and far less simulated
// execution time than one-query-at-a-time (the PR 4 acceptance result
// the service exists to exploit). Queries that cannot share a sweep —
// Δ-stepping SSSP and path reconstruction — go through a bounded worker
// queue with admission control instead: when the queue is full the
// server answers 503 with a Retry-After header rather than building an
// unbounded backlog.
package graphd

// This file holds the JSON wire types the server and client share. All
// request bodies are strict: unknown fields, trailing data, and
// malformed JSON are 400s, never 500s.

// BFSRequest asks for a single-source BFS. Source is required; Target
// optionally asks for s→t reachability/distance; Levels asks for the
// full per-vertex level array (omit it on large graphs unless needed —
// the array has one entry per vertex). TimeoutMS > 0 bounds the
// query's wall-clock budget: past it the server answers 504 with
// partial statistics instead of finishing the traversal (the
// server-side cap, when configured, still applies if tighter).
type BFSRequest struct {
	Source    *int `json:"source"`
	Target    *int `json:"target,omitempty"`
	Levels    bool `json:"levels,omitempty"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

// BFSResponse answers a BFSRequest. Distance/Found are present only
// when the request named a target (Distance is -1 when the target is
// unreached); Levels only when requested (Unreached vertices hold -1).
type BFSResponse struct {
	Source   int        `json:"source"`
	Reached  int        `json:"reached"`
	Found    *bool      `json:"found,omitempty"`
	Distance *int32     `json:"distance,omitempty"`
	Levels   []int32    `json:"levels,omitempty"`
	Stats    QueryStats `json:"stats"`
}

// PathRequest asks for one shortest path Source→Target. Both are
// required. TimeoutMS works as in BFSRequest.
type PathRequest struct {
	Source    *int `json:"source"`
	Target    *int `json:"target"`
	TimeoutMS int  `json:"timeout_ms,omitempty"`
}

// PathResponse answers a PathRequest. Found is false (with a nil Path)
// when the target is unreachable — that is an answer, not an error.
type PathResponse struct {
	Source   int        `json:"source"`
	Target   int        `json:"target"`
	Found    bool       `json:"found"`
	Distance int32      `json:"distance"`
	Path     []int      `json:"path,omitempty"`
	Stats    QueryStats `json:"stats"`
}

// SSSPRequest asks for Δ-stepping shortest distances from Source.
// Delta 0 selects the max(1, maxWeight/avgDegree) heuristic; Target
// optionally asks for one s→t distance; Dists for the full per-vertex
// distance array.
type SSSPRequest struct {
	Source    *int   `json:"source"`
	Target    *int   `json:"target,omitempty"`
	Delta     uint32 `json:"delta,omitempty"`
	Dists     bool   `json:"dists,omitempty"`
	TimeoutMS int    `json:"timeout_ms,omitempty"`
}

// SSSPResponse answers an SSSPRequest. Unreachable vertices hold
// MaxDist (the uint32 maximum) in Dists; Distance/Found are present
// only when the request named a target.
type SSSPResponse struct {
	Source   int        `json:"source"`
	Reached  int        `json:"reached"`
	Found    *bool      `json:"found,omitempty"`
	Distance *uint32    `json:"distance,omitempty"`
	Dists    []uint32   `json:"dists,omitempty"`
	Stats    QueryStats `json:"stats"`
}

// QueryStats reports how the service executed one query: how long it
// waited for a sweep or worker slot, how many queries and distinct
// sources shared its sweep (both 1 for unbatched work), and the sweep's
// simulated cost — which is AMORTIZED over the whole batch, so a query
// that shared a 64-lane sweep reports the one sweep's words, not 64
// runs' worth.
type QueryStats struct {
	QueueWaitS float64 `json:"queue_wait_s"`
	BatchSize  int     `json:"batch_size"`
	BatchLanes int     `json:"batch_lanes"`
	SimExecS   float64 `json:"simexec_s"`
	SimCommS   float64 `json:"simcomm_s"`
	Words      int64   `json:"words"`
	WallS      float64 `json:"wall_s"`
}

// ErrorResponse is the body of every non-2xx answer. A 504
// (deadline-exceeded) answer sets DeadlineExceeded and, when the
// engines canceled cooperatively, Partial — how far the traversal got
// before the budget ran out.
type ErrorResponse struct {
	Error            string        `json:"error"`
	DeadlineExceeded bool          `json:"deadline_exceeded,omitempty"`
	Partial          *PartialStats `json:"partial,omitempty"`
}

// PartialStats reports the progress of a cooperatively canceled run:
// Done whole units (Unit "level", "sweep", or "epoch") completed, and
// the simulated / wall cost spent before the stop.
type PartialStats struct {
	Unit     string  `json:"unit"`
	Done     int     `json:"done"`
	SimExecS float64 `json:"simexec_s"`
	WallS    float64 `json:"wall_s"`
}

// HealthzResponse is the GET /healthz document: "ok" (200, every
// replica live), "degraded" (200, quarantined replicas being rebuilt),
// "down" (503, no live replica), or "draining" (503, shutdown begun).
type HealthzResponse struct {
	Status      string `json:"status"`
	Quarantined int    `json:"quarantined,omitempty"`
}

// GraphInfo describes the graph the server distributed at startup.
type GraphInfo struct {
	N         int    `json:"n"`
	Edges     int64  `json:"edges"`
	Weighted  bool   `json:"weighted"`
	Mesh      string `json:"mesh"`
	Partition string `json:"partition"`
	Wire      string `json:"wire"`
	Replicas  int    `json:"replicas"`
}

// BatchingInfo reports the batcher and admission configuration.
type BatchingInfo struct {
	WindowS    float64 `json:"window_s"`
	MaxBatch   int     `json:"max_batch"`
	MaxWaiting int     `json:"max_waiting"`
	QueueDepth int     `json:"queue_depth"`
}

// QueryCounts aggregates the server's lifetime traffic.
type QueryCounts struct {
	BFS              int64   `json:"bfs"`
	Path             int64   `json:"path"`
	SSSP             int64   `json:"sssp"`
	Batches          int64   `json:"batches"`
	BatchedQueries   int64   `json:"batched_queries"`
	MeanBatchSize    float64 `json:"mean_batch_size"`
	Rejected         int64   `json:"rejected"`
	Errors           int64   `json:"errors"`
	DeadlineExceeded int64   `json:"deadline_exceeded"`
	Inflight         int64   `json:"inflight"`
}

// ReplicaInfo reports the engine pool's supervision state: how many
// replicas were configured, how many are live right now, how many are
// quarantined awaiting rebuild, and the lifetime panic/rebuild counts.
type ReplicaInfo struct {
	Configured  int   `json:"configured"`
	Live        int   `json:"live"`
	Quarantined int   `json:"quarantined"`
	Panics      int64 `json:"panics"`
	Rebuilds    int64 `json:"rebuilds"`
}

// FaultInfo aggregates the transport-fault counters of every sweep and
// query served so far, present when the server runs with a fault plan
// (or any run recorded fault activity).
type FaultInfo struct {
	Plan          string  `json:"plan,omitempty"`
	Injected      uint64  `json:"injected"`
	Retries       uint64  `json:"retries"`
	ChecksumFails uint64  `json:"checksum_fails"`
	DupsDiscarded uint64  `json:"dups_discarded"`
	RetrySeconds  float64 `json:"retry_seconds"`
}

// StatsResponse is the GET /v1/stats document.
type StatsResponse struct {
	UptimeS  float64      `json:"uptime_s"`
	Graph    GraphInfo    `json:"graph"`
	Batching BatchingInfo `json:"batching"`
	Queries  QueryCounts  `json:"queries"`
	Replicas ReplicaInfo  `json:"replicas"`
	Faults   *FaultInfo   `json:"faults,omitempty"`
}
