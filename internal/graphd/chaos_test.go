package graphd

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"
	"time"

	bgl "repro"
)

// postJSON sends one raw POST and decodes the answer envelope, keeping
// status and body visible to assertions (the typed client hides 504
// bodies behind errors).
func postJSON(t *testing.T, url, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	return resp.StatusCode, raw
}

// TestQueryDeadlineSimBudget: with the server's simulated-execution
// ceiling set absurdly low, every query answers 504 with a descriptive
// deadline body and partial progress — never a hang, never a 500.
func TestQueryDeadlineSimBudget(t *testing.T) {
	g := testGraph(t, 500)
	s := newTestServer(t, g, func(c *Config) {
		c.MaxSimExec = 1e-9 // the first level boundary already exceeds this
	})
	ts, _ := startHTTP(t, s)

	for path, body := range map[string]string{
		"/v1/bfs":  `{"source":1}`,
		"/v1/sssp": `{"source":1}`,
	} {
		code, raw := postJSON(t, ts.URL+path, body)
		if code != http.StatusGatewayTimeout {
			t.Fatalf("%s under a tiny sim budget: status %d (body %s), want 504", path, code, raw)
		}
		var er ErrorResponse
		if err := json.Unmarshal(raw, &er); err != nil {
			t.Fatalf("%s 504 body is not JSON: %v (%s)", path, err, raw)
		}
		if !er.DeadlineExceeded || !strings.Contains(er.Error, "budget exceeded") {
			t.Fatalf("%s 504 body %+v does not mark the exceeded budget", path, er)
		}
		if er.Partial == nil || er.Partial.Unit == "" {
			t.Fatalf("%s 504 body %+v carries no partial progress", path, er)
		}
	}
	if st := s.Stats(); st.Queries.DeadlineExceeded != 2 {
		t.Fatalf("stats count %d deadline-exceeded queries, want 2", st.Queries.DeadlineExceeded)
	}
	if v := s.reg.Counter("graphd_deadline_exceeded_total").Value(); v != 2 {
		t.Fatalf("metrics count %d deadline-exceeded queries, want 2", v)
	}
}

// TestQueryDeadlineTimeoutMS: a request-level timeout_ms shorter than
// the batching window guarantees the deadline has passed by the first
// level boundary — the engines cancel cooperatively and the rider gets
// a 504 with the partial stats.
func TestQueryDeadlineTimeoutMS(t *testing.T) {
	g := testGraph(t, 500)
	s := newTestServer(t, g, func(c *Config) {
		c.Window = 20 * time.Millisecond // deadline long gone when the sweep starts
	})
	ts, _ := startHTTP(t, s)

	code, raw := postJSON(t, ts.URL+"/v1/bfs", `{"source":2,"timeout_ms":1}`)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("bfs with timeout_ms=1: status %d (body %s), want 504", code, raw)
	}
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err != nil || !er.DeadlineExceeded {
		t.Fatalf("504 body %s does not mark the deadline (err %v)", raw, err)
	}
	if !strings.Contains(er.Error, "deadline exceeded") {
		t.Fatalf("504 error %q does not say the deadline was exceeded", er.Error)
	}

	// Negative timeouts are the caller's bug: 400, not 504.
	code, raw = postJSON(t, ts.URL+"/v1/bfs", `{"source":2,"timeout_ms":-5}`)
	if code != http.StatusBadRequest || !strings.Contains(string(raw), "timeout_ms") {
		t.Fatalf("negative timeout_ms: status %d body %s, want a 400 naming timeout_ms", code, raw)
	}

	// A generous timeout changes nothing about the answer.
	res, err := NewClient(ts.URL).BFS(BFSRequest{Source: intp(2), Levels: true, TimeoutMS: 60_000})
	if err != nil {
		t.Fatalf("bfs with a generous timeout: %v", err)
	}
	for v, want := range g.SerialBFS(2) {
		if res.Levels[v] != want {
			t.Fatalf("levels[%d] = %d under a generous timeout, oracle %d", v, res.Levels[v], want)
		}
	}
}

// TestChaosPanicQuarantineRebuild is the supervision drill end to end:
// the armed sweep kills its replica, the query transparently retries on
// the healthy one and still matches the oracle, /v1/stats shows the
// panic and quarantine, /healthz degrades while the rebuild runs and
// recovers once the supervisor restores the pool.
func TestChaosPanicQuarantineRebuild(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) {
		c.Replicas = 2
		c.ChaosPanicSweep = 1
		c.RebuildBackoff = 800 * time.Millisecond // hold the degraded window open
	})
	ts, cl := startHTTP(t, s)

	res, err := cl.BFS(BFSRequest{Source: intp(3), Levels: true})
	if err != nil {
		t.Fatalf("bfs riding the chaos sweep: %v", err)
	}
	for v, want := range g.SerialBFS(3) {
		if res.Levels[v] != want {
			t.Fatalf("levels[%d] = %d after the replica panic, oracle %d", v, res.Levels[v], want)
		}
	}

	st := s.Stats()
	if st.Replicas.Panics < 1 {
		t.Fatalf("stats count %d panics after the armed sweep, want >= 1", st.Replicas.Panics)
	}
	if st.Replicas.Quarantined != 1 || st.Replicas.Live != 1 {
		t.Fatalf("replica state %+v right after the panic, want 1 live / 1 quarantined", st.Replicas)
	}

	// The degraded window: 200 with status "degraded" and the count.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz during rebuild: %v", err)
	}
	raw := readAll(t, resp)
	resp.Body.Close()
	var hz HealthzResponse
	if err := json.Unmarshal(raw, &hz); err != nil {
		t.Fatalf("healthz body %s: %v", raw, err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "degraded" || hz.Quarantined != 1 {
		t.Fatalf("healthz during rebuild = %d %+v, want 200 degraded quarantined=1", resp.StatusCode, hz)
	}

	// The supervisor restores the pool; poll until healthy again.
	deadline := time.Now().Add(10 * time.Second)
	for {
		st = s.Stats()
		if st.Replicas.Quarantined == 0 && st.Replicas.Live == 2 && st.Replicas.Rebuilds >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica never rebuilt: %+v", st.Replicas)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := cl.Healthz(); err != nil {
		t.Fatalf("healthz after the rebuild: %v", err)
	}

	// The rebuilt replica serves: drain enough queries that both pool
	// slots must participate.
	for i := 0; i < 4; i++ {
		if _, err := cl.BFS(BFSRequest{Source: intp(i)}); err != nil {
			t.Fatalf("bfs %d after the rebuild: %v", i, err)
		}
	}
	if v := s.reg.Counter("graphd_replica_rebuilds_total").Value(); v < 1 {
		t.Fatalf("metrics count %d rebuilds, want >= 1", v)
	}
}

// TestFaultInjectedServing: under the canned fault plan every answer
// still matches the serial oracle (the transport recovery protocol
// absorbs the faults) and the injected-fault counters surface in
// /v1/stats.
func TestFaultInjectedServing(t *testing.T) {
	g, err := bgl.GenerateWeighted(300, 6, 5)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	s := newTestServer(t, g, func(c *Config) {
		c.Fault = bgl.CannedFaultPlan(7)
	})
	_, cl := startHTTP(t, s)

	res, err := cl.BFS(BFSRequest{Source: intp(1), Levels: true})
	if err != nil {
		t.Fatalf("bfs under faults: %v", err)
	}
	for v, want := range g.SerialBFS(1) {
		if res.Levels[v] != want {
			t.Fatalf("levels[%d] = %d under faults, oracle %d", v, res.Levels[v], want)
		}
	}
	sres, err := cl.SSSP(SSSPRequest{Source: intp(1), Dists: true})
	if err != nil {
		t.Fatalf("sssp under faults: %v", err)
	}
	for v, want := range g.SerialDijkstra(1) {
		if sres.Dists[v] != want {
			t.Fatalf("dists[%d] = %d under faults, oracle %d", v, sres.Dists[v], want)
		}
	}

	st := s.Stats()
	if st.Faults == nil {
		t.Fatal("stats carry no fault section under a fault plan")
	}
	if st.Faults.Injected == 0 {
		t.Fatal("canned plan injected zero faults across a BFS and an SSSP")
	}
	if st.Faults.Plan == "" {
		t.Fatal("fault section does not name the plan")
	}
	if st.Replicas.Panics != 0 {
		t.Fatalf("below-budget plan panicked %d replicas", st.Replicas.Panics)
	}
}
