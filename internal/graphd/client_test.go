package graphd

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient builds a client with millisecond backoff so retry tests
// stay quick.
func fastClient(base string, retries int) *Client {
	return NewClient(base,
		WithRetries(retries),
		WithBackoff(time.Millisecond),
		WithMaxBackoff(5*time.Millisecond),
		WithTimeout(5*time.Second))
}

// TestClientRetriesOverload: 503 answers are retried (honouring
// Retry-After) until the server recovers.
func TestClientRetriesOverload(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"batch backlog full"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"source":1,"reached":5,"stats":{"batch_size":1}}`))
	}))
	defer ts.Close()

	resp, err := fastClient(ts.URL, 3).BFS(BFSRequest{Source: intp(1)})
	if err != nil {
		t.Fatalf("BFS after two overloads: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if resp.Reached != 5 {
		t.Fatalf("decoded reached %d, want 5", resp.Reached)
	}
}

// TestClientNoRetryOn4xx: a bad request is the caller's fault; one
// attempt, typed error.
func TestClientNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"missing \"source\""}`))
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 3).BFS(BFSRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest || !strings.Contains(apiErr.Message, "missing") {
		t.Fatalf("APIError %+v, want the server's 400 text", apiErr)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("client retried a 400: %d attempts", got)
	}
}

// TestClientGivesUp: a persistently overloaded server exhausts the
// retry budget with a terminal error that still carries the 503.
func TestClientGivesUp(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"still full"}`))
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 2).BFS(BFSRequest{Source: intp(1)})
	if err == nil {
		t.Fatal("no error from a server that never recovers")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("terminal error %q does not say it gave up", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("terminal error %v does not wrap the 503", err)
	}
}

// TestClientRetriesTransport: a dropped connection is retried.
func TestClientRetriesTransport(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server is not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // slam the connection: transport error client-side
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"source":1,"reached":2,"stats":{}}`))
	}))
	defer ts.Close()

	resp, err := fastClient(ts.URL, 2).BFS(BFSRequest{Source: intp(1)})
	if err != nil {
		t.Fatalf("BFS after a dropped connection: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
	if resp.Reached != 2 {
		t.Fatalf("decoded reached %d, want 2", resp.Reached)
	}
}

// TestClientRetryDelay pins the backoff arithmetic: doubling from the
// base, capped, with a short server Retry-After taking precedence.
func TestClientRetryDelay(t *testing.T) {
	c := NewClient("http://unused",
		WithBackoff(10*time.Millisecond), WithMaxBackoff(50*time.Millisecond))
	cases := []struct {
		attempt    int
		retryAfter string
		want       time.Duration
	}{
		{1, "", 10 * time.Millisecond},
		{2, "", 20 * time.Millisecond},
		{3, "", 40 * time.Millisecond},
		{4, "", 50 * time.Millisecond},  // capped
		{1, "0", 0},                     // server says now
		{1, "2", 50 * time.Millisecond}, // server says 2s; cap wins
		{1, "junk", 10 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := c.retryDelay(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("retryDelay(%d, %q) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}
