package graphd

import (
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fastClient builds a client with millisecond backoff so retry tests
// stay quick.
func fastClient(base string, retries int) *Client {
	return NewClient(base,
		WithRetries(retries),
		WithBackoff(time.Millisecond),
		WithMaxBackoff(5*time.Millisecond),
		WithTimeout(5*time.Second))
}

// TestClientRetriesOverload: 503 answers are retried (honouring
// Retry-After) until the server recovers.
func TestClientRetriesOverload(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte(`{"error":"batch backlog full"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"source":1,"reached":5,"stats":{"batch_size":1}}`))
	}))
	defer ts.Close()

	resp, err := fastClient(ts.URL, 3).BFS(BFSRequest{Source: intp(1)})
	if err != nil {
		t.Fatalf("BFS after two overloads: %v", err)
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	if resp.Reached != 5 {
		t.Fatalf("decoded reached %d, want 5", resp.Reached)
	}
}

// TestClientNoRetryOn4xx: a bad request is the caller's fault; one
// attempt, typed error.
func TestClientNoRetryOn4xx(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_, _ = w.Write([]byte(`{"error":"missing \"source\""}`))
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 3).BFS(BFSRequest{})
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("error %v is not an *APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest || !strings.Contains(apiErr.Message, "missing") {
		t.Fatalf("APIError %+v, want the server's 400 text", apiErr)
	}
	if got := attempts.Load(); got != 1 {
		t.Fatalf("client retried a 400: %d attempts", got)
	}
}

// TestClientGivesUp: a persistently overloaded server exhausts the
// retry budget with a terminal error that still carries the 503.
func TestClientGivesUp(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		attempts.Add(1)
		w.Header().Set("Retry-After", "0")
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = w.Write([]byte(`{"error":"still full"}`))
	}))
	defer ts.Close()

	_, err := fastClient(ts.URL, 2).BFS(BFSRequest{Source: intp(1)})
	if err == nil {
		t.Fatal("no error from a server that never recovers")
	}
	if got := attempts.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}
	if !strings.Contains(err.Error(), "giving up after 3 attempts") {
		t.Fatalf("terminal error %q does not say it gave up", err)
	}
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("terminal error %v does not wrap the 503", err)
	}
}

// TestClientRetriesTransport: a dropped connection is retried.
func TestClientRetriesTransport(t *testing.T) {
	var attempts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if attempts.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("test server is not hijackable")
			}
			conn, _, err := hj.Hijack()
			if err != nil {
				t.Fatalf("hijack: %v", err)
			}
			conn.Close() // slam the connection: transport error client-side
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"source":1,"reached":2,"stats":{}}`))
	}))
	defer ts.Close()

	resp, err := fastClient(ts.URL, 2).BFS(BFSRequest{Source: intp(1)})
	if err != nil {
		t.Fatalf("BFS after a dropped connection: %v", err)
	}
	if got := attempts.Load(); got != 2 {
		t.Fatalf("server saw %d attempts, want 2", got)
	}
	if resp.Reached != 2 {
		t.Fatalf("decoded reached %d, want 2", resp.Reached)
	}
}

// TestClientRetryDelay pins the backoff arithmetic with jitter off:
// doubling from the base, capped, with a short server Retry-After
// taking precedence.
func TestClientRetryDelay(t *testing.T) {
	c := NewClient("http://unused", WithJitterSeed(0),
		WithBackoff(10*time.Millisecond), WithMaxBackoff(50*time.Millisecond))
	cases := []struct {
		attempt    int
		retryAfter string
		want       time.Duration
	}{
		{1, "", 10 * time.Millisecond},
		{2, "", 20 * time.Millisecond},
		{3, "", 40 * time.Millisecond},
		{4, "", 50 * time.Millisecond},  // capped
		{1, "0", 0},                     // server says now
		{1, "2", 50 * time.Millisecond}, // server says 2s; cap wins
		{1, "junk", 10 * time.Millisecond},
	}
	for _, tc := range cases {
		if got := c.retryDelay(tc.attempt, tc.retryAfter); got != tc.want {
			t.Errorf("retryDelay(%d, %q) = %v, want %v", tc.attempt, tc.retryAfter, got, tc.want)
		}
	}
}

// TestClientRetryJitter pins the jittered backoff contract: a computed
// delay lands in [d/2, d) so lockstep retry storms decorrelate, a
// server-directed Retry-After is never shortened (it gains at most an
// extra quarter), and the same seed reproduces the same schedule
// exactly — the determinism the chaos harness relies on.
func TestClientRetryJitter(t *testing.T) {
	mk := func(seed uint64) *Client {
		return NewClient("http://unused", WithJitterSeed(seed),
			WithBackoff(10*time.Millisecond), WithMaxBackoff(80*time.Millisecond))
	}
	c := mk(42)
	for attempt := 1; attempt <= 3; attempt++ {
		base := 10 * time.Millisecond << (attempt - 1)
		got := c.retryDelay(attempt, "")
		if got < base/2 || got >= base {
			t.Errorf("jittered delay %v for attempt %d outside [%v, %v)", got, attempt, base/2, base)
		}
	}
	// Server-directed waits only grow, and only by up to a quarter.
	// The 80ms cap applies before jitter, so the spread tops the cap.
	for i := 0; i < 8; i++ {
		got := c.retryDelay(1, "1")
		lo, hi := 80*time.Millisecond, 100*time.Millisecond
		if got < lo || got >= hi {
			t.Errorf("jittered Retry-After delay %v outside [%v, %v)", got, lo, hi)
		}
	}
	// Same seed, same schedule — bit-for-bit.
	a, b := mk(7), mk(7)
	for attempt := 1; attempt <= 6; attempt++ {
		da, db := a.retryDelay(attempt, ""), b.retryDelay(attempt, "")
		if da != db {
			t.Fatalf("same-seed clients diverged at attempt %d: %v vs %v", attempt, da, db)
		}
	}
	// Different seeds should disagree somewhere in a handful of draws.
	a, b = mk(1), mk(2)
	same := true
	for attempt := 1; attempt <= 6; attempt++ {
		if a.retryDelay(attempt, "") != b.retryDelay(attempt, "") {
			same = false
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 produced identical six-delay schedules")
	}
}

// TestClientBreakerStates pins the breaker state machine: closed until
// threshold consecutive transport failures, fail-fast while open, one
// half-open probe after cooldown, closing again on success.
func TestClientBreakerStates(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	for i := 0; i < 3; i++ {
		if !b.allow() {
			t.Fatalf("closed breaker refused attempt %d", i)
		}
		b.failure()
	}
	if b.allow() {
		t.Fatal("breaker still allows after reaching the failure threshold")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after the cooldown")
	}
	if b.allow() {
		t.Fatal("half-open breaker let a second probe through")
	}
	b.failure() // probe failed: re-open
	if b.allow() {
		t.Fatal("breaker closed again after a failed probe")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open a second time")
	}
	b.success() // probe succeeded: closed
	for i := 0; i < 5; i++ {
		if !b.allow() {
			t.Fatalf("closed-again breaker refused attempt %d", i)
		}
	}
}

// TestClientBreakerFailsFast: with the breaker open against a dead
// listener, retries stop touching the network and the terminal error
// names the breaker.
func TestClientBreakerFailsFast(t *testing.T) {
	// A listener that is already closed: every dial fails instantly.
	ts := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	dead := ts.URL
	ts.Close()

	c := NewClient(dead,
		WithRetries(5),
		WithBackoff(time.Millisecond),
		WithMaxBackoff(2*time.Millisecond),
		WithBreaker(2, time.Minute), // open after 2 failures, long cooldown
		WithTimeout(time.Second))
	_, err := c.BFS(BFSRequest{Source: intp(1)})
	if err == nil {
		t.Fatal("BFS against a dead listener succeeded")
	}
	if !strings.Contains(err.Error(), "circuit breaker open") {
		t.Fatalf("terminal error %q does not name the open breaker", err)
	}
}

// TestClientHedgedBFS: with hedging armed and a server whose FIRST
// answer stalls, the duplicate request wins and the client returns
// long before the stalled attempt would have.
func TestClientHedgedBFS(t *testing.T) {
	var n atomic.Int64
	release := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1) == 1 {
			<-release // first attempt wedges until the test ends
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"source":3,"reached":9,"stats":{}}`))
	}))
	defer ts.Close()
	defer close(release)

	c := NewClient(ts.URL,
		WithRetries(0),
		WithTimeout(10*time.Second),
		WithHedge(0.5, 20*time.Millisecond))
	done := make(chan struct{})
	var resp *BFSResponse
	var err error
	go func() { resp, err = c.BFS(BFSRequest{Source: intp(3)}); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("hedged BFS did not return while the first attempt was wedged")
	}
	if err != nil {
		t.Fatalf("hedged BFS: %v", err)
	}
	if resp.Reached != 9 {
		t.Fatalf("decoded reached %d, want 9", resp.Reached)
	}
	if c.Hedged() != 1 {
		t.Fatalf("client fired %d hedges, want exactly 1", c.Hedged())
	}
}
