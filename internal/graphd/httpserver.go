package graphd

import (
	"net/http"
	"time"
)

// HTTP server hardening defaults. A graph query can legitimately run
// for a while, so there is deliberately NO WriteTimeout — a slow sweep
// must not have its response connection cut mid-body. The header and
// body read timeouts are what defend the accept loop against
// slow-loris clients that dribble bytes to pin a connection open.
const (
	DefaultReadHeaderTimeout = 5 * time.Second
	DefaultReadTimeout       = time.Minute
	DefaultIdleTimeout       = time.Minute
)

// NewHTTPServer wraps a handler (normally Server.Handler) in an
// http.Server with the service's hardening defaults set. Callers that
// need different limits can adjust the returned server before
// listening.
func NewHTTPServer(h http.Handler) *http.Server {
	return &http.Server{
		Handler:           h,
		ReadHeaderTimeout: DefaultReadHeaderTimeout,
		ReadTimeout:       DefaultReadTimeout,
		IdleTimeout:       DefaultIdleTimeout,
	}
}
