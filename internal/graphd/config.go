package graphd

import (
	"fmt"
	"time"

	bgl "repro"
	"repro/internal/metrics"
)

// Defaults for the tunable knobs of Config. The 2ms window is long
// enough to coalesce a burst of concurrent queries (a sweep on the
// headline workload runs for tens of milliseconds, so arrivals during
// one sweep pool into the next batch anyway) and short enough to be
// invisible next to a single traversal.
const (
	DefaultWindow     = 2 * time.Millisecond
	DefaultQueueDepth = 64
	DefaultRetryAfter = time.Second

	// Rebuild backoff bounds for the replica supervisor: the first
	// rebuild of a quarantined replica waits DefaultRebuildBackoff,
	// doubling per failure up to DefaultRebuildBackoffMax.
	DefaultRebuildBackoff    = 50 * time.Millisecond
	DefaultRebuildBackoffMax = 2 * time.Second
)

// Config describes a graphd server: the graph to distribute once at
// startup, the simulated machine to distribute it over, and the
// batching / admission knobs.
type Config struct {
	// Graph is the graph the server answers queries about (required).
	// The caller loads or generates it; NewServer distributes it.
	Graph *bgl.Graph

	// R, C are the logical mesh dimensions (default 1x1); Partition
	// selects the layout (default Part2D); Wire the payload codec
	// (default WireHybrid).
	R, C      int
	Partition bgl.Partition
	Wire      bgl.WireMode

	// Cores models n compute cores per node (see bgl.WithCores);
	// Workers sizes the real per-rank pool. Zero leaves the engine
	// defaults (single core, inline loops).
	Cores, Workers int

	// Replicas is the number of independent engine copies (each a full
	// Cluster + DistGraph, distributed at startup). One engine runs one
	// sweep or query at a time, so replicas bound the service's real
	// execution concurrency — at the price of replicating the stores.
	// Default 1.
	Replicas int

	// Window is how long the batcher holds the first query of a batch
	// open for companions (default DefaultWindow; 0 disables batching —
	// every query sweeps alone). MaxBatch caps the distinct sources per
	// sweep (default bgl.MaxLanes = 64, the MultiBFS lane capacity).
	Window   time.Duration
	MaxBatch int

	// MaxWaiting bounds the batched BFS queries admitted but not yet
	// answered (default 4x MaxBatch); QueueDepth bounds the worker
	// queue for queries that cannot batch — SSSP and path (default
	// DefaultQueueDepth). Beyond either bound the server answers 503
	// with a Retry-After of RetryAfter (default DefaultRetryAfter).
	MaxWaiting int
	QueueDepth int
	RetryAfter time.Duration

	// QueryWorkers is the number of goroutines draining the non-batch
	// queue (default Replicas — more would just contend for engines).
	QueryWorkers int

	// Fault, when non-nil, injects the plan's deterministic transport
	// faults into every sweep and query the server runs. The engines'
	// recovery protocol absorbs any plan below the retry budget, so
	// answers stay identical to fault-free serving; the per-run fault
	// counters aggregate into /v1/stats and /metrics.
	Fault *bgl.FaultPlan

	// MaxQueryWall caps every query's wall-clock budget server-side
	// (0 = uncapped). A request's timeout_ms tightens but never loosens
	// it. MaxSimExec caps the SIMULATED execution seconds a single run
	// may burn (0 = uncapped) — the defense against a pathological
	// query on a fault plan whose retries balloon simulated time.
	MaxQueryWall time.Duration
	MaxSimExec   float64

	// ChaosPanicSweep, when > 0, arms a one-shot chaos drill: the Nth
	// BFS sweep the server runs gets a hostile fault overlay that
	// deterministically exhausts the retry budget and panics a rank.
	// The serving path quarantines that replica, retries the sweep on a
	// healthy one, and the supervisor rebuilds the casualty — so the
	// query still succeeds and the drill is observable only in
	// /v1/stats. Test/chaos-harness knob; 0 (the default) disables it.
	ChaosPanicSweep int

	// RebuildBackoff / RebuildBackoffMax bound the supervisor's retry
	// cadence when rebuilding a quarantined replica (defaults
	// DefaultRebuildBackoff / DefaultRebuildBackoffMax).
	RebuildBackoff    time.Duration
	RebuildBackoffMax time.Duration

	// Metrics, when non-nil, receives the server's instruments and
	// every run's engine statistics; it is what GET /metrics serves.
	// Default: a fresh registry.
	Metrics *metrics.Registry
}

// withDefaults returns cfg with every zero knob replaced by its
// default. It does not validate; NewServer does.
func (cfg Config) withDefaults() Config {
	if cfg.R == 0 {
		cfg.R = 1
	}
	if cfg.C == 0 {
		cfg.C = 1
	}
	if cfg.Wire == 0 {
		// WireSparse is the zero WireMode; the service default is the
		// hybrid codec, which is never more words than sparse. Callers
		// that really want plain lists set Wire explicitly after
		// noting this (the CLI exposes -wire).
		cfg.Wire = bgl.WireHybrid
	}
	if cfg.Replicas == 0 {
		cfg.Replicas = 1
	}
	if cfg.Window == 0 {
		cfg.Window = DefaultWindow
	}
	if cfg.MaxBatch == 0 {
		cfg.MaxBatch = bgl.MaxLanes
	}
	if cfg.MaxWaiting == 0 {
		cfg.MaxWaiting = 4 * cfg.MaxBatch
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.RetryAfter == 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.QueryWorkers == 0 {
		cfg.QueryWorkers = cfg.Replicas
	}
	if cfg.RebuildBackoff == 0 {
		cfg.RebuildBackoff = DefaultRebuildBackoff
	}
	if cfg.RebuildBackoffMax == 0 {
		cfg.RebuildBackoffMax = DefaultRebuildBackoffMax
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.NewRegistry()
	}
	return cfg
}

// validate rejects configurations no server can run. Distribute-style
// errors (mesh larger than the graph, unknown partitioning) surface
// from the engine build in NewServer with the same descriptive text the
// library gives.
func (cfg Config) validate() error {
	if cfg.Graph == nil {
		return fmt.Errorf("graphd: config needs a graph")
	}
	if cfg.R < 0 || cfg.C < 0 {
		return fmt.Errorf("graphd: mesh must be positive, got %dx%d", cfg.R, cfg.C)
	}
	if cfg.Window < 0 {
		return fmt.Errorf("graphd: negative batching window %v", cfg.Window)
	}
	if cfg.MaxBatch < 0 || cfg.MaxBatch > bgl.MaxLanes {
		return fmt.Errorf("graphd: max batch %d outside the MultiBFS lane capacity [1, %d]",
			cfg.MaxBatch, bgl.MaxLanes)
	}
	if cfg.Replicas < 0 {
		return fmt.Errorf("graphd: negative replica count %d", cfg.Replicas)
	}
	if cfg.MaxWaiting < 0 || cfg.QueueDepth < 0 || cfg.QueryWorkers < 0 {
		return fmt.Errorf("graphd: admission bounds must be non-negative")
	}
	if cfg.MaxQueryWall < 0 {
		return fmt.Errorf("graphd: negative query wall cap %v", cfg.MaxQueryWall)
	}
	if cfg.MaxSimExec < 0 {
		return fmt.Errorf("graphd: negative simulated-execution cap %g", cfg.MaxSimExec)
	}
	if cfg.ChaosPanicSweep < 0 {
		return fmt.Errorf("graphd: negative chaos panic sweep %d", cfg.ChaosPanicSweep)
	}
	return nil
}

// engine is one independent copy of the simulated machine with the
// graph distributed over it. An engine runs one sweep or query at a
// time (the ranks share mailboxes), so the server keeps engines in a
// pool and callers borrow one per run. idx names the replica slot for
// quarantine accounting and rebuild logs.
type engine struct {
	idx int
	cl  *bgl.Cluster
	dg  *bgl.DistGraph
}

// buildEngine distributes the graph for replica slot i. The supervisor
// calls it again when rebuilding a quarantined replica.
func buildEngine(cfg Config, i int) (*engine, error) {
	cl, err := bgl.NewCluster(bgl.ClusterConfig{R: cfg.R, C: cfg.C})
	if err != nil {
		return nil, fmt.Errorf("graphd: building replica %d: %w", i, err)
	}
	dg, err := cl.Distribute(cfg.Graph, bgl.WithPartition(cfg.Partition))
	if err != nil {
		return nil, fmt.Errorf("graphd: distributing replica %d: %w", i, err)
	}
	return &engine{idx: i, cl: cl, dg: dg}, nil
}

// buildEngines distributes the graph cfg.Replicas times.
func buildEngines(cfg Config) ([]*engine, error) {
	engines := make([]*engine, 0, cfg.Replicas)
	for i := 0; i < cfg.Replicas; i++ {
		e, err := buildEngine(cfg, i)
		if err != nil {
			return nil, err
		}
		engines = append(engines, e)
	}
	return engines, nil
}
