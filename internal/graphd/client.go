package graphd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the well-typed HTTP client for a graphd server — the one
// cmd/graphload, the smoke harness, and tests all share instead of
// each hand-rolling raw HTTP. It retries overload answers (503) and
// transport failures with capped exponential backoff plus seeded
// deterministic jitter, honouring the server's Retry-After header, and
// never retries 4xx answers (the request itself is wrong) or queries
// that already reached the engine. An optional circuit breaker fails
// fast when the host stops answering at all, and optional hedging
// races a duplicate BFS against one stuck past the usual latency.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
	rng     *jitterRNG
	br      *breaker
	hedge   *hedger
}

// ClientOption adjusts a Client.
type ClientOption func(*Client)

// WithTimeout bounds each HTTP attempt (default 30s — a full traversal
// of a large graph takes real wall time).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries sets how many times an attempt is retried after an
// overload or transport failure (default 3; 0 disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base retry delay, doubled per attempt (default
// 50ms). A server Retry-After below the cap overrides the computed
// delay.
func WithBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.backoff = d }
}

// WithMaxBackoff caps any single retry delay, including server-directed
// Retry-After waits (default 2s).
func WithMaxBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.maxWait = d }
}

// WithJitterSeed reseeds the deterministic retry jitter (default seed
// 1). Seed 0 disables jitter entirely — every delay is then exactly
// the doubled base, which is what the pre-jitter releases did and what
// a test that wants exact delays asks for.
func WithJitterSeed(seed uint64) ClientOption {
	return func(c *Client) {
		if seed == 0 {
			c.rng = nil
			return
		}
		c.rng = newJitterRNG(seed)
	}
}

// WithBreaker arms the per-host circuit breaker: after threshold
// CONSECUTIVE transport failures (no HTTP answer at all — any status
// code counts as alive) the client fails fast for cooldown, then lets
// one half-open probe rediscover the host. Threshold 0 disables
// (the default).
func WithBreaker(threshold int, cooldown time.Duration) ClientOption {
	return func(c *Client) {
		if threshold <= 0 {
			c.br = nil
			return
		}
		c.br = newBreaker(threshold, cooldown)
	}
}

// WithHedge arms BFS request hedging: a query still unanswered past
// the given quantile of recently observed latencies (never below
// floor) fires one racing duplicate, and the first success wins. Safe
// because every graphd query is an idempotent read. Off by default.
func WithHedge(quantile float64, floor time.Duration) ClientOption {
	return func(c *Client) {
		if quantile <= 0 || quantile >= 1 {
			quantile = 0.95
		}
		c.hedge = newHedger(quantile, floor)
	}
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		backoff: 50 * time.Millisecond,
		maxWait: 2 * time.Second,
		rng:     newJitterRNG(1),
	}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// APIError is a non-2xx server answer, preserving the status code so
// callers can distinguish their own bad request (4xx) from server
// trouble (5xx).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("graphd: server answered %d: %s", e.Status, e.Message)
}

// retryDelay picks the wait before attempt (1-based), preferring the
// server's Retry-After when it is shorter than the cap. Jitter (when
// seeded) spreads a computed backoff over [d/2, d) so a fleet of
// clients that failed together does not retry in lockstep; a
// server-directed Retry-After is never shortened — it gains up to d/4
// instead, decorrelating the reconnect herd the 503 itself created.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	d := c.backoff << (attempt - 1)
	fromServer := false
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
			fromServer = true
		}
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	if c.rng != nil && d > 0 {
		if fromServer {
			d += c.rng.durationN(d / 4)
		} else {
			d = d/2 + c.rng.durationN(d/2)
		}
	}
	return d
}

// do runs one request with retries, decoding a 2xx answer into out.
// Clients are safe for concurrent use.
func (c *Client) do(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("graphd: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		// retry, when non-nil, records that this attempt failed
		// retryably and how long to wait before the next one.
		retry := func(err error, retryAfter string) error {
			lastErr = err
			if attempt >= c.retries {
				return fmt.Errorf("graphd: giving up after %d attempts: %w", attempt+1, lastErr)
			}
			time.Sleep(c.retryDelay(attempt+1, retryAfter))
			return nil
		}
		if c.br != nil && !c.br.allow() {
			// Fail fast without touching the network; the retry sleep
			// doubles as the cooldown wait before the half-open probe.
			if gerr := retry(errBreakerOpen, ""); gerr != nil {
				return gerr
			}
			continue
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("graphd: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport failure: the server may be mid-restart; retry.
			if c.br != nil {
				c.br.failure()
			}
			if gerr := retry(err, ""); gerr != nil {
				return gerr
			}
			continue
		}
		if c.br != nil {
			// Any HTTP answer proves the host is alive — even a 503.
			c.br.success()
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			if gerr := retry(rerr, ""); gerr != nil {
				return gerr
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if gerr := retry(decodeAPIError(resp.StatusCode, raw), resp.Header.Get("Retry-After")); gerr != nil {
				return gerr
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Anything else non-2xx is not retryable: 4xx means the
			// request is wrong, 5xx that the query itself failed.
			return decodeAPIError(resp.StatusCode, raw)
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("graphd: decoding response: %w", err)
		}
		return nil
	}
}

// decodeAPIError turns a non-2xx body into an *APIError, falling back
// to the raw body when it is not the ErrorResponse shape.
func decodeAPIError(status int, raw []byte) error {
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		return &APIError{Status: status, Message: er.Error}
	}
	return &APIError{Status: status, Message: strings.TrimSpace(string(raw))}
}

// BFS runs a single-source BFS query (batched server-side). With
// hedging armed (WithHedge), a query still unanswered past the usual
// latency races one duplicate and the first success wins.
func (c *Client) BFS(req BFSRequest) (*BFSResponse, error) {
	if c.hedge == nil {
		var resp BFSResponse
		if err := c.do(http.MethodPost, "/v1/bfs", req, &resp); err != nil {
			return nil, err
		}
		return &resp, nil
	}
	return c.hedgedBFS(req)
}

// Hedged reports how many duplicate hedge requests this client has
// fired (0 when hedging is off).
func (c *Client) Hedged() int64 {
	if c.hedge == nil {
		return 0
	}
	return c.hedge.Hedged()
}

// hedgedBFS races up to two identical BFS requests. BFS is an
// idempotent read, so the duplicate is safe; the loser's answer is
// discarded. Both attempts still get the full retry treatment of do.
func (c *Client) hedgedBFS(req BFSRequest) (*BFSResponse, error) {
	type out struct {
		resp *BFSResponse
		err  error
	}
	t0 := time.Now()
	ch := make(chan out, 2)
	run := func() {
		var resp BFSResponse
		if err := c.do(http.MethodPost, "/v1/bfs", req, &resp); err != nil {
			ch <- out{nil, err}
			return
		}
		ch <- out{&resp, nil}
	}
	go run()
	timer := time.NewTimer(c.hedge.delay())
	defer timer.Stop()
	launched, answered := 1, 0
	var firstErr error
	for {
		select {
		case o := <-ch:
			answered++
			if o.err == nil {
				c.hedge.observe(time.Since(t0))
				return o.resp, nil
			}
			if firstErr == nil {
				firstErr = o.err
			}
			if answered == launched {
				return nil, firstErr
			}
		case <-timer.C:
			if launched == 1 {
				launched = 2
				c.hedge.hedged.Add(1)
				go run()
			}
		}
	}
}

// Path asks for one shortest path.
func (c *Client) Path(req PathRequest) (*PathResponse, error) {
	var resp PathResponse
	if err := c.do(http.MethodPost, "/v1/path", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SSSP runs a Δ-stepping distance query.
func (c *Client) SSSP(req SSSPRequest) (*SSSPResponse, error) {
	var resp SSSPResponse
	if err := c.do(http.MethodPost, "/v1/sssp", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the service statistics.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the text metrics snapshot.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp.StatusCode, raw)
	}
	return string(raw), nil
}

// Healthz checks liveness (nil means the server answered 200).
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}
