package graphd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Client is the well-typed HTTP client for a graphd server — the one
// cmd/graphload, the smoke harness, and tests all share instead of
// each hand-rolling raw HTTP. It retries overload answers (503) and
// transport failures with capped exponential backoff, honouring the
// server's Retry-After header, and never retries 4xx answers (the
// request itself is wrong) or queries that already reached the engine.
type Client struct {
	base    string
	hc      *http.Client
	retries int
	backoff time.Duration
	maxWait time.Duration
}

// ClientOption adjusts a Client.
type ClientOption func(*Client)

// WithTimeout bounds each HTTP attempt (default 30s — a full traversal
// of a large graph takes real wall time).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.hc.Timeout = d }
}

// WithRetries sets how many times an attempt is retried after an
// overload or transport failure (default 3; 0 disables retrying).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// WithBackoff sets the base retry delay, doubled per attempt (default
// 50ms). A server Retry-After below the cap overrides the computed
// delay.
func WithBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.backoff = d }
}

// WithMaxBackoff caps any single retry delay, including server-directed
// Retry-After waits (default 2s).
func WithMaxBackoff(d time.Duration) ClientOption {
	return func(c *Client) { c.maxWait = d }
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080").
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    strings.TrimRight(base, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		retries: 3,
		backoff: 50 * time.Millisecond,
		maxWait: 2 * time.Second,
	}
	for _, fn := range opts {
		fn(c)
	}
	return c
}

// APIError is a non-2xx server answer, preserving the status code so
// callers can distinguish their own bad request (4xx) from server
// trouble (5xx).
type APIError struct {
	Status  int
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("graphd: server answered %d: %s", e.Status, e.Message)
}

// retryDelay picks the wait before attempt (1-based), preferring the
// server's Retry-After when it is shorter than the cap.
func (c *Client) retryDelay(attempt int, retryAfter string) time.Duration {
	d := c.backoff << (attempt - 1)
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			d = time.Duration(secs) * time.Second
		}
	}
	if d > c.maxWait {
		d = c.maxWait
	}
	return d
}

// do runs one request with retries, decoding a 2xx answer into out.
// Clients are safe for concurrent use.
func (c *Client) do(method, path string, body, out any) error {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return fmt.Errorf("graphd: encoding request: %w", err)
		}
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		// retry, when non-nil, records that this attempt failed
		// retryably and how long to wait before the next one.
		retry := func(err error, retryAfter string) error {
			lastErr = err
			if attempt >= c.retries {
				return fmt.Errorf("graphd: giving up after %d attempts: %w", attempt+1, lastErr)
			}
			time.Sleep(c.retryDelay(attempt+1, retryAfter))
			return nil
		}
		var rd io.Reader
		if payload != nil {
			rd = bytes.NewReader(payload)
		}
		req, err := http.NewRequest(method, c.base+path, rd)
		if err != nil {
			return fmt.Errorf("graphd: building request: %w", err)
		}
		if payload != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			// Transport failure: the server may be mid-restart; retry.
			if gerr := retry(err, ""); gerr != nil {
				return gerr
			}
			continue
		}
		raw, rerr := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
		resp.Body.Close()
		if rerr != nil {
			if gerr := retry(rerr, ""); gerr != nil {
				return gerr
			}
			continue
		}
		if resp.StatusCode == http.StatusServiceUnavailable {
			if gerr := retry(decodeAPIError(resp.StatusCode, raw), resp.Header.Get("Retry-After")); gerr != nil {
				return gerr
			}
			continue
		}
		if resp.StatusCode != http.StatusOK {
			// Anything else non-2xx is not retryable: 4xx means the
			// request is wrong, 5xx that the query itself failed.
			return decodeAPIError(resp.StatusCode, raw)
		}
		if out == nil {
			return nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("graphd: decoding response: %w", err)
		}
		return nil
	}
}

// decodeAPIError turns a non-2xx body into an *APIError, falling back
// to the raw body when it is not the ErrorResponse shape.
func decodeAPIError(status int, raw []byte) error {
	var er ErrorResponse
	if err := json.Unmarshal(raw, &er); err == nil && er.Error != "" {
		return &APIError{Status: status, Message: er.Error}
	}
	return &APIError{Status: status, Message: strings.TrimSpace(string(raw))}
}

// BFS runs a single-source BFS query (batched server-side).
func (c *Client) BFS(req BFSRequest) (*BFSResponse, error) {
	var resp BFSResponse
	if err := c.do(http.MethodPost, "/v1/bfs", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Path asks for one shortest path.
func (c *Client) Path(req PathRequest) (*PathResponse, error) {
	var resp PathResponse
	if err := c.do(http.MethodPost, "/v1/path", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// SSSP runs a Δ-stepping distance query.
func (c *Client) SSSP(req SSSPRequest) (*SSSPResponse, error) {
	var resp SSSPResponse
	if err := c.do(http.MethodPost, "/v1/sssp", req, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Stats fetches the service statistics.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do(http.MethodGet, "/v1/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Metrics fetches the text metrics snapshot.
func (c *Client) Metrics() (string, error) {
	req, err := http.NewRequest(http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", decodeAPIError(resp.StatusCode, raw)
	}
	return string(raw), nil
}

// Healthz checks liveness (nil means the server answered 200).
func (c *Client) Healthz() error {
	return c.do(http.MethodGet, "/healthz", nil, nil)
}
