package graphd

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	bgl "repro"
	"repro/internal/metrics"
)

// ErrDraining is returned by Submit once the batcher has begun its
// shutdown drain; the server maps it to a 503.
var ErrDraining = errors.New("graphd: draining")

// sweepStats is the shared cost of one coalesced sweep, reported to
// every query that rode it.
type sweepStats struct {
	SimExecS float64
	SimCommS float64
	Words    int64
	WallS    float64
}

// sweepFunc runs one sweep over the deduplicated batch sources and
// returns one level array per source, index-aligned. The batcher owns
// WHEN a sweep fires and which queries share it; the server owns HOW a
// sweep runs (borrowing an engine, choosing MultiBFS vs a plain BFS for
// a single lane). deadline is the batch's wall budget — the LOOSEST
// member deadline, zero when any member is unbounded, because one
// shared sweep cannot stop early for its most impatient rider without
// robbing the patient ones.
type sweepFunc func(sources []bgl.Vertex, deadline time.Time) ([][]int32, sweepStats, error)

// batchAnswer is what a waiting caller receives: its own lane's levels
// plus the per-query statistics.
type batchAnswer struct {
	levels []int32
	stats  QueryStats
	err    error
}

// batchQuery is one waiting caller. deadline is the query's own wall
// budget (zero = unbounded); the batch sweeps under the loosest member
// deadline and each HANDLER still enforces its own tighter one.
type batchQuery struct {
	source   bgl.Vertex
	enq      time.Time
	deadline time.Time
	done     chan batchAnswer
}

// batcher coalesces concurrent single-source BFS queries into
// multi-source sweeps. The first query of a batch opens a window;
// every query arriving before it expires joins the batch, duplicate
// sources sharing one lane. The batch fires when the window expires OR
// the distinct-source count reaches maxBatch, whichever comes first —
// so a steady stream of concurrent queries runs at full 64-lane
// occupancy while a lone query waits at most one window. Close drains:
// the pending batch fires immediately and Close blocks until every
// accepted query has its answer.
type batcher struct {
	window   time.Duration
	maxBatch int
	sweep    sweepFunc

	mu      sync.Mutex
	closed  bool
	pending []*batchQuery
	lanes   map[bgl.Vertex]int // distinct pending sources → lane index
	gen     uint64             // flush generation, guards stale timers
	timer   *time.Timer

	wg sync.WaitGroup

	batches        atomic.Int64
	batchedQueries atomic.Int64

	mBatches *metrics.Counter
	mQueries *metrics.Counter
	mLanes   *metrics.Histogram
}

// batchLaneBuckets are the upper bounds of the batch-occupancy
// histogram (graphd_batch_lanes): powers of two up to the lane cap.
var batchLaneBuckets = []float64{1, 2, 4, 8, 16, 32, 64}

// newBatcher builds a batcher; reg may be nil.
func newBatcher(window time.Duration, maxBatch int, sweep sweepFunc, reg *metrics.Registry) *batcher {
	b := &batcher{
		window:   window,
		maxBatch: maxBatch,
		sweep:    sweep,
		lanes:    map[bgl.Vertex]int{},
	}
	if b.maxBatch < 1 {
		b.maxBatch = 1
	}
	if b.maxBatch > bgl.MaxLanes {
		b.maxBatch = bgl.MaxLanes
	}
	if reg != nil {
		b.mBatches = reg.Counter("graphd_batches_total")
		b.mQueries = reg.Counter("graphd_batched_queries_total")
		b.mLanes = reg.Histogram("graphd_batch_lanes", batchLaneBuckets)
	}
	return b
}

// submit enqueues one query and returns the channel its answer will
// arrive on (buffered — the batch goroutine never blocks on a caller).
func (b *batcher) submit(src bgl.Vertex, deadline time.Time) (<-chan batchAnswer, error) {
	q := &batchQuery{source: src, enq: time.Now(), deadline: deadline, done: make(chan batchAnswer, 1)}
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return nil, ErrDraining
	}
	b.pending = append(b.pending, q)
	if _, dup := b.lanes[src]; !dup {
		b.lanes[src] = len(b.lanes)
	}
	switch {
	case len(b.lanes) >= b.maxBatch || b.window <= 0:
		// Size cap reached (or batching disabled): fire now. A
		// duplicate source never pushes the lane count past the cap, so
		// overflow can only happen between batches, never inside one.
		b.flushLocked()
	case len(b.pending) == 1:
		// First query of a new batch: open the window.
		gen := b.gen
		b.timer = time.AfterFunc(b.window, func() { b.expire(gen) })
	}
	b.mu.Unlock()
	return q.done, nil
}

// expire fires the batch whose window just closed. The generation
// guard makes a stale timer (its batch already flushed by the size
// cap) a no-op instead of prematurely firing the next batch.
func (b *batcher) expire(gen uint64) {
	b.mu.Lock()
	if gen == b.gen && len(b.pending) > 0 {
		b.flushLocked()
	}
	b.mu.Unlock()
}

// flushLocked hands the pending batch to a sweep goroutine and resets
// the collection state. Callers hold b.mu.
func (b *batcher) flushLocked() {
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	batch, lanes := b.pending, b.lanes
	b.pending, b.lanes = nil, map[bgl.Vertex]int{}
	b.gen++
	b.wg.Add(1)
	go b.run(batch, lanes)
}

// batchDeadline is the wall budget one shared sweep runs under: the
// LOOSEST member deadline, or zero (unbounded) when any member is
// unbounded. Tighter individual deadlines stay with their handlers —
// an impatient rider 504s on its own timer while the sweep finishes
// for the patient ones.
func batchDeadline(batch []*batchQuery) time.Time {
	var dl time.Time
	for _, q := range batch {
		if q.deadline.IsZero() {
			return time.Time{}
		}
		if q.deadline.After(dl) {
			dl = q.deadline
		}
	}
	return dl
}

// run executes one batch: sweep the deduplicated sources, then
// demultiplex each lane's levels back to its waiting caller(s). The
// demux loop runs under a recover of its own: a panic while answering
// one query (a short levels array, a corrupted lane map) must not
// strand the other riders of the sweep without an answer — they get a
// descriptive error instead.
func (b *batcher) run(batch []*batchQuery, lanes map[bgl.Vertex]int) {
	defer b.wg.Done()
	answered := make([]bool, len(batch))
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("graphd: batch demux panicked: %v", r)
			for i, q := range batch {
				if !answered[i] {
					q.done <- batchAnswer{err: err}
				}
			}
		}
	}()
	start := time.Now()
	sources := make([]bgl.Vertex, len(lanes))
	for src, i := range lanes {
		sources[i] = src
	}
	levels, st, err := b.sweep(sources, batchDeadline(batch))
	b.batches.Add(1)
	b.batchedQueries.Add(int64(len(batch)))
	if b.mBatches != nil {
		b.mBatches.Inc()
		b.mQueries.Add(int64(len(batch)))
		b.mLanes.Observe(float64(len(sources)))
	}
	for i, q := range batch {
		if err != nil {
			q.done <- batchAnswer{err: err}
			answered[i] = true
			continue
		}
		q.done <- batchAnswer{
			levels: levels[lanes[q.source]],
			stats: QueryStats{
				QueueWaitS: start.Sub(q.enq).Seconds(),
				BatchSize:  len(batch),
				BatchLanes: len(sources),
				SimExecS:   st.SimExecS,
				SimCommS:   st.SimCommS,
				Words:      st.Words,
				WallS:      st.WallS,
			},
		}
		answered[i] = true
	}
}

// close drains the batcher: the pending batch (if any) fires
// immediately — a query admitted before shutdown always gets its
// answer — and close blocks until every in-flight sweep has delivered.
func (b *batcher) close() {
	b.mu.Lock()
	if !b.closed {
		b.closed = true
		if len(b.pending) > 0 {
			b.flushLocked()
		} else if b.timer != nil {
			b.timer.Stop()
			b.timer = nil
		}
	}
	b.mu.Unlock()
	b.wg.Wait()
}

// Batches and BatchedQueries report lifetime totals (their ratio is
// the realized mean batch size — the service's coalescing win).
func (b *batcher) Batches() int64        { return b.batches.Load() }
func (b *batcher) BatchedQueries() int64 { return b.batchedQueries.Load() }
