package graphd

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	bgl "repro"
	"repro/internal/graph"
)

// startHTTP mounts the server on a test listener and returns the shared
// typed client pointed at it.
func startHTTP(t *testing.T, s *Server) (*httptest.Server, *Client) {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, NewClient(ts.URL, WithTimeout(2*time.Minute), WithRetries(0))
}

func intp(v int) *int { return &v }

// TestServerEndToEnd drives every endpoint through the shared client
// and checks each answer against the serial oracles.
func TestServerEndToEnd(t *testing.T) {
	g, err := bgl.GenerateWeighted(300, 6, 5)
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	s := newTestServer(t, g, func(c *Config) { c.Window = 5 * time.Millisecond })
	_, cl := startHTTP(t, s)

	if err := cl.Healthz(); err != nil {
		t.Fatalf("healthz: %v", err)
	}

	wantLevels := g.SerialBFS(1)
	bres, err := cl.BFS(BFSRequest{Source: intp(1), Target: intp(200), Levels: true})
	if err != nil {
		t.Fatalf("bfs: %v", err)
	}
	wantReached := 0
	for v, l := range wantLevels {
		if l != bgl.Unreached {
			wantReached++
		}
		if bres.Levels[v] != l {
			t.Fatalf("bfs levels[%d] = %d, oracle %d", v, bres.Levels[v], l)
		}
	}
	if bres.Reached != wantReached {
		t.Fatalf("bfs reached %d, oracle %d", bres.Reached, wantReached)
	}
	if bres.Found == nil || bres.Distance == nil {
		t.Fatal("bfs with target: found/distance missing from answer")
	}
	if want := wantLevels[200]; *bres.Distance != want || *bres.Found != (want != bgl.Unreached) {
		t.Fatalf("bfs target: found=%v distance=%d, oracle level %d", *bres.Found, *bres.Distance, want)
	}
	if bres.Stats.BatchSize < 1 || bres.Stats.Words <= 0 {
		t.Fatalf("bfs stats not filled: %+v", bres.Stats)
	}

	pres, err := cl.Path(PathRequest{Source: intp(0), Target: intp(250)})
	if err != nil {
		t.Fatalf("path: %v", err)
	}
	hops := g.SerialBFS(0)[250]
	if !pres.Found || pres.Distance != hops {
		t.Fatalf("path 0→250: found=%v distance=%d, oracle hop distance %d", pres.Found, pres.Distance, hops)
	}
	if len(pres.Path) != int(hops)+1 || pres.Path[0] != 0 || pres.Path[len(pres.Path)-1] != 250 {
		t.Fatalf("path endpoints/length wrong: %v (want %d hops 0→250)", pres.Path, hops)
	}
	for i := 0; i+1 < len(pres.Path); i++ {
		adjacent := false
		for _, nb := range g.Neighbors(bgl.Vertex(pres.Path[i])) {
			if int(nb) == pres.Path[i+1] {
				adjacent = true
				break
			}
		}
		if !adjacent {
			t.Fatalf("path step %d→%d is not an edge", pres.Path[i], pres.Path[i+1])
		}
	}

	wantDist := g.SerialDijkstra(2)
	sres, err := cl.SSSP(SSSPRequest{Source: intp(2), Target: intp(123), Dists: true})
	if err != nil {
		t.Fatalf("sssp: %v", err)
	}
	for v, d := range wantDist {
		if sres.Dists[v] != d {
			t.Fatalf("sssp dist[%d] = %d, oracle %d", v, sres.Dists[v], d)
		}
	}
	if sres.Found == nil || sres.Distance == nil || *sres.Distance != wantDist[123] {
		t.Fatalf("sssp target answer wrong: %+v (oracle %d)", sres, wantDist[123])
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatalf("stats: %v", err)
	}
	if st.Queries.BFS != 1 || st.Queries.Path != 1 || st.Queries.SSSP != 1 {
		t.Fatalf("query counts %+v, want 1 of each", st.Queries)
	}
	if st.Graph.N != 300 || !st.Graph.Weighted || st.Graph.Mesh != "2x2" {
		t.Fatalf("graph info wrong: %+v", st.Graph)
	}
	if st.Queries.Inflight != 0 {
		t.Fatalf("inflight %d after all queries answered", st.Queries.Inflight)
	}

	text, err := cl.Metrics()
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, name := range []string{"graphd_queries_total", "graphd_batches_total", "graphd_latency_seconds"} {
		if !strings.Contains(text, name) {
			t.Fatalf("metrics snapshot missing %s:\n%s", name, text)
		}
	}
}

// TestServerUnreachable: an unreachable target is an answer (200 with
// found=false), never an error.
func TestServerUnreachable(t *testing.T) {
	g, err := bgl.FromEdges(6, [][2]bgl.Vertex{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if err != nil {
		t.Fatalf("from edges: %v", err)
	}
	s := newTestServer(t, g, nil)
	_, cl := startHTTP(t, s)

	bres, err := cl.BFS(BFSRequest{Source: intp(0), Target: intp(5)})
	if err != nil {
		t.Fatalf("bfs: %v", err)
	}
	if bres.Found == nil || *bres.Found || *bres.Distance != bgl.Unreached {
		t.Fatalf("bfs to other component: %+v, want found=false distance=%d", bres, bgl.Unreached)
	}

	pres, err := cl.Path(PathRequest{Source: intp(0), Target: intp(5)})
	if err != nil {
		t.Fatalf("path: %v", err)
	}
	if pres.Found || len(pres.Path) != 0 || pres.Distance != -1 {
		t.Fatalf("path to other component: %+v, want found=false, no path", pres)
	}

	sres, err := cl.SSSP(SSSPRequest{Source: intp(0), Target: intp(5)})
	if err != nil {
		t.Fatalf("sssp: %v", err)
	}
	if sres.Found == nil || *sres.Found || *sres.Distance != graph.MaxDist {
		t.Fatalf("sssp to other component: %+v, want found=false distance=MaxDist", sres)
	}
	if sres.Reached != 3 {
		t.Fatalf("sssp reached %d vertices, component has 3", sres.Reached)
	}
}

// TestServerValidation: bad requests get descriptive 4xx JSON answers,
// never a 500 and never a panic.
func TestServerValidation(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, nil)
	ts, _ := startHTTP(t, s)

	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantSubstr               string
	}{
		{"malformed json", "POST", "/v1/bfs", `{`, 400, "malformed"},
		{"unknown field", "POST", "/v1/bfs", `{"source":1,"bogus":true}`, 400, "bogus"},
		{"missing source", "POST", "/v1/bfs", `{}`, 400, `missing "source"`},
		{"source too large", "POST", "/v1/bfs", `{"source":100000}`, 400, "out of range"},
		{"source negative", "POST", "/v1/bfs", `{"source":-1}`, 400, "out of range"},
		{"target too large", "POST", "/v1/bfs", `{"source":1,"target":100000}`, 400, "out of range"},
		{"trailing data", "POST", "/v1/bfs", `{"source":1} {"source":2}`, 400, "trailing"},
		{"wrong type", "POST", "/v1/bfs", `{"source":"zero"}`, 400, "malformed"},
		{"bfs needs POST", "GET", "/v1/bfs", ``, 405, "needs POST"},
		{"path missing target", "POST", "/v1/path", `{"source":1}`, 400, `missing "target"`},
		{"path missing source", "POST", "/v1/path", `{"target":1}`, 400, `missing "source"`},
		{"path unknown field", "POST", "/v1/path", `{"source":1,"target":2,"levels":true}`, 400, "levels"},
		{"sssp negative delta", "POST", "/v1/sssp", `{"source":1,"delta":-3}`, 400, "malformed"},
		{"sssp source too large", "POST", "/v1/sssp", `{"source":12345678}`, 400, "out of range"},
		{"stats needs GET", "POST", "/v1/stats", `{}`, 405, "needs GET"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatalf("request: %v", err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d", resp.StatusCode, tc.wantStatus)
			}
			if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
				t.Fatalf("error answer content-type %q, want JSON", ct)
			}
			apiErr, ok := decodeAPIError(resp.StatusCode, readAll(t, resp)).(*APIError)
			if !ok || apiErr.Message == "" {
				t.Fatalf("error body is not an ErrorResponse: %+v", apiErr)
			}
			if !strings.Contains(apiErr.Message, tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", apiErr.Message, tc.wantSubstr)
			}
		})
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	buf := make([]byte, 0, 512)
	tmp := make([]byte, 512)
	for {
		n, err := resp.Body.Read(tmp)
		buf = append(buf, tmp[:n]...)
		if err != nil {
			return buf
		}
	}
}

// TestServerConfigErrors: impossible configurations fail NewServer with
// a descriptive error, including the Distribute-style ones the engine
// itself diagnoses.
func TestServerConfigErrors(t *testing.T) {
	small, err := bgl.FromEdges(6, [][2]bgl.Vertex{{0, 1}, {2, 3}, {4, 5}})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name       string
		cfg        Config
		wantSubstr string
	}{
		{"nil graph", Config{}, "needs a graph"},
		{"mesh larger than graph", Config{Graph: small, R: 4, C: 4}, "more ranks"},
		{"batch above lane cap", Config{Graph: small, MaxBatch: bgl.MaxLanes + 1}, "lane capacity"},
		{"negative window", Config{Graph: small, Window: -time.Second}, "negative batching window"},
		{"negative replicas", Config{Graph: small, Replicas: -2}, "negative replica"},
		{"negative mesh", Config{Graph: small, R: -1, C: 2}, "mesh must be positive"},
		{"negative queue", Config{Graph: small, QueueDepth: -1}, "non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := NewServer(tc.cfg)
			if err == nil {
				s.Close()
				t.Fatal("NewServer accepted an impossible config")
			}
			if !strings.Contains(err.Error(), tc.wantSubstr) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSubstr)
			}
		})
	}
}

// TestServerQueueFull: with the lone engine borrowed and the bounded
// queue filled, a path query is rejected with 503 + Retry-After instead
// of queueing without bound.
func TestServerQueueFull(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) {
		c.QueueDepth = 1
		c.RetryAfter = 3 * time.Second
	})
	ts, _ := startHTTP(t, s)

	e := <-s.engines // hold the only engine: the first job wedges in acquire
	started := make(chan struct{})
	if !s.submitWork(func() {
		close(started)
		s.runEngine(func(*engine) error { return nil })
	}) {
		s.engines <- e
		t.Fatal("idle server refused the first job")
	}
	<-started // the worker is now wedged; the queue is empty and stays fillable
	for i := 0; ; i++ {
		if i > 4 {
			s.engines <- e
			t.Fatal("queue (depth 1, one wedged worker) did not fill after 5 no-op jobs")
		}
		if !s.submitWork(func() {}) {
			break
		}
	}
	resp, err := http.Post(ts.URL+"/v1/path", "application/json", strings.NewReader(`{"source":1,"target":2}`))
	if err != nil {
		s.engines <- e
		t.Fatalf("request: %v", err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	s.engines <- e // give the engine back before cleanup drains the queue
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with a full queue, want 503 (body %s)", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "3" {
		t.Fatalf("Retry-After %q, want %q", ra, "3")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Fatalf("rejection %s does not mention the full queue", body)
	}
	if s.nRejected.Value() < 1 {
		t.Fatal("rejected counter not bumped")
	}
}

// TestServerBatchBacklogFull: once MaxWaiting batched queries are
// waiting on sweeps, further BFS queries are rejected with 503.
func TestServerBatchBacklogFull(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, func(c *Config) {
		c.Window = time.Hour // only the size cap (2) can fire the batch
		c.MaxBatch = 2
		c.MaxWaiting = 1
	})
	ts, cl := startHTTP(t, s)

	first := make(chan error, 1)
	go func() {
		_, err := cl.BFS(BFSRequest{Source: intp(3)})
		first <- err
	}()
	deadline := time.Now().Add(10 * time.Second)
	for s.waiting.Load() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("first BFS query never reached the batcher")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/bfs", "application/json", strings.NewReader(`{"source":4}`))
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	body := readAll(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d with a full backlog, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without a Retry-After header")
	}
	if !strings.Contains(string(body), "backlog full") {
		t.Fatalf("rejection %s does not mention the backlog", body)
	}

	// A second distinct source reaches the size cap and fires the sweep,
	// releasing the waiting query.
	ch, err := s.batcher.submit(9, time.Time{})
	if err != nil {
		t.Fatalf("companion submit: %v", err)
	}
	recvAnswer(t, ch)
	if err := <-first; err != nil {
		t.Fatalf("waiting BFS query failed after the sweep fired: %v", err)
	}
}

// TestServerDrain: a draining server refuses new work but Close waits
// for admitted queries.
func TestServerDrain(t *testing.T) {
	g := testGraph(t, 400)
	s := newTestServer(t, g, nil)
	ts, cl := startHTTP(t, s)

	if _, err := cl.BFS(BFSRequest{Source: intp(1)}); err != nil {
		t.Fatalf("warmup bfs: %v", err)
	}
	s.Close()
	s.Close() // idempotent

	for _, probe := range []struct{ method, path, body string }{
		{"POST", "/v1/bfs", `{"source":1}`},
		{"POST", "/v1/path", `{"source":1,"target":2}`},
		{"POST", "/v1/sssp", `{"source":1}`},
		{"GET", "/healthz", ""},
	} {
		req, _ := http.NewRequest(probe.method, ts.URL+probe.path, strings.NewReader(probe.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s during drain: %v", probe.path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("%s answered %d on a draining server, want 503", probe.path, resp.StatusCode)
		}
	}
}
