package trace

import (
	"bytes"
	"fmt"
	"io"
	"strconv"
)

// Chrome trace-event export. One "X" (complete) event per span with
// ts/dur in microseconds, pid = rank, tid 0 for the main track and
// tid 1 for the coprocessor (overlap) track; "M" metadata events name
// the tracks and one "I" instant event per rank carries the final
// ledger totals (full-precision seconds, the values Check verifies
// against). The output is deterministic: same run, byte-identical
// file — the golden-trace tests rely on this.

const (
	// TidMain is the per-rank track carrying everything that advances
	// the simulated clock (compute, serialized communication,
	// structural spans).
	TidMain = 0
	// TidOverlap is the per-rank coprocessor track carrying the
	// communication seconds hidden under main-track activity.
	TidOverlap = 1
)

// totalsName is the per-rank instant event carrying final ledgers.
const totalsName = "totals"

func (ev *Event) tid() int {
	if ev.Kind == KindOverlap {
		return TidOverlap
	}
	return TidMain
}

func jnum(x float64) string { return strconv.FormatFloat(x, 'g', -1, 64) }

// usec converts simulated seconds to trace microseconds.
func usec(sec float64) string { return jnum(sec * 1e6) }

// WriteChrome writes the recorded run as Chrome trace-event JSON. It
// fails if any structural span is still open (unbalanced Begin/End) or
// a bound rank never finished.
func (r *Recorder) WriteChrome(w io.Writer) error {
	var buf bytes.Buffer
	buf.WriteString("{\"displayTimeUnit\":\"ms\",\"otherData\":{")
	for i, k := range r.metaKeys {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.WriteString(strconv.Quote(k))
		buf.WriteByte(':')
		buf.WriteString(strconv.Quote(r.metaVals[i]))
	}
	buf.WriteString("},\"traceEvents\":[\n")
	first := true
	emit := func(line string) {
		if !first {
			buf.WriteString(",\n")
		}
		first = false
		buf.WriteString(line)
	}
	for rank, t := range r.ranks {
		if t == nil {
			continue
		}
		if n := len(t.open); n != 0 {
			return fmt.Errorf("trace: rank %d has %d unclosed span(s), innermost %q", rank, n, t.events[t.open[n-1]].Name)
		}
		if !t.hasTotals {
			return fmt.Errorf("trace: rank %d never finished", rank)
		}
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"process_name\",\"args\":{\"name\":\"rank %d\"}}", rank, TidMain, rank))
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"main\"}}", rank, TidMain))
		emit(fmt.Sprintf("{\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"coprocessor\"}}", rank, TidOverlap))
		for i := range t.events {
			ev := &t.events[i]
			var line bytes.Buffer
			fmt.Fprintf(&line, "{\"ph\":\"X\",\"pid\":%d,\"tid\":%d,\"cat\":%s,\"name\":%s,\"ts\":%s,\"dur\":%s",
				rank, ev.tid(), strconv.Quote(ev.Cat), strconv.Quote(ev.Name), usec(ev.T0), usec(ev.T1-ev.T0))
			if len(ev.Args) > 0 {
				line.WriteString(",\"args\":{")
				for j, a := range ev.Args {
					if j > 0 {
						line.WriteByte(',')
					}
					line.WriteString(strconv.Quote(a.Key))
					line.WriteByte(':')
					line.WriteString(strconv.FormatInt(a.Val, 10))
				}
				line.WriteByte('}')
			}
			line.WriteByte('}')
			emit(line.String())
		}
		emit(fmt.Sprintf("{\"ph\":\"I\",\"pid\":%d,\"tid\":%d,\"s\":\"p\",\"cat\":\"meta\",\"name\":%s,\"ts\":%s,\"args\":{\"clock_s\":%s,\"comp_s\":%s,\"comm_s\":%s,\"overlap_s\":%s}}",
			rank, TidMain, strconv.Quote(totalsName), usec(t.totals.Clock),
			jnum(t.totals.Clock), jnum(t.totals.Comp), jnum(t.totals.Comm), jnum(t.totals.Overlap)))
	}
	buf.WriteString("\n]}\n")
	_, err := w.Write(buf.Bytes())
	return err
}

// Chrome returns the trace-event JSON as bytes.
func (r *Recorder) Chrome() ([]byte, error) {
	var buf bytes.Buffer
	if err := r.WriteChrome(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
