// Package trace records per-rank spans keyed to the simulated clock,
// so a whole search run renders as a rank x time Gantt chart. The comm
// layer emits the cost spans (every simulated-clock advance is covered
// by exactly one compute/send/recv/wait/barrier/allreduce span, and
// every coprocessor-hidden second by an overlap span on a separate
// track), the collectives emit per-operation and per-round structural
// spans, and the engines emit level/epoch/scan spans. The recording is
// observation only: nothing here charges the clock, so a traced run is
// clock-identical to an untraced one.
//
// A Recorder exports the Chrome trace-event JSON format (one file per
// run, loadable in Perfetto or chrome://tracing), and Check re-derives
// the comm ledger invariant
//
//	clock == comp + comm - overlap
//
// span nesting/non-overlap rules, and the per-level word counts from
// the trace alone — making the trace an independent witness of the
// cost model (see tracecheck in check.go).
package trace

// Kind classifies a span.
type Kind uint8

const (
	// KindComp is serialized computation on the rank's main track.
	KindComp Kind = iota
	// KindComm is serialized communication on the main track: blocking
	// send/recv overheads, waits, barriers, and allreduce latencies
	// that advance the clock.
	KindComm
	// KindOverlap is communication progressed by the modeled
	// coprocessor concurrently with main-track activity: charged to the
	// communication ledger and OverlapTime but never to the clock.
	// Overlap spans live on their own track and may overlap each other
	// (independent transfers progress concurrently).
	KindOverlap
	// KindSpan is a structural span opened by Begin and closed by End:
	// collective operations and rounds, engine levels/epochs/scans.
	KindSpan
)

// Cat returns the category cost spans of this kind export under.
func (k Kind) Cat() string {
	switch k {
	case KindComp:
		return "comp"
	case KindComm:
		return "comm"
	case KindOverlap:
		return "overlap"
	default:
		return "span"
	}
}

// Arg is one integer annotation on a span (word counts, round indices,
// frontier sizes). Integer-valued so re-derivations from the trace are
// exact.
type Arg struct {
	Key string
	Val int64
}

// Event is one recorded span. T0/T1 are simulated seconds.
type Event struct {
	Name string
	Cat  string
	Kind Kind
	T0   float64
	T1   float64 // -1 while a structural span is still open
	Args []Arg
}

// Totals snapshots one rank's final simulated-time ledgers.
type Totals struct {
	Clock   float64
	Comp    float64
	Comm    float64
	Overlap float64
}

// Tracer records one rank's events. All methods are safe on a nil
// receiver and do nothing, so instrumented code needs no guards and a
// run without a bound Recorder pays only the nil checks. A Tracer must
// only be used from the goroutine running its rank (events append
// without locks, mirroring the Comm ownership rule).
type Tracer struct {
	rank      int
	now       func() float64
	events    []Event
	open      []int // indices of open structural spans, innermost last
	last      int   // last main-track cost event eligible for coalescing
	totals    Totals
	hasTotals bool
}

// Cost records a completed cost span [t0, t1]. Zero- and
// negative-length spans are dropped (nothing was charged). Contiguous
// main-track spans with the same name and kind coalesce into one event
// — Begin/End reset the coalescing so a cost span never straddles a
// structural boundary. Overlap-track spans never coalesce (their
// intervals are not contiguous by construction).
func (t *Tracer) Cost(name string, k Kind, t0, t1 float64) {
	if t == nil || t1 <= t0 {
		return
	}
	if k != KindOverlap && t.last >= 0 {
		ev := &t.events[t.last]
		if ev.Name == name && ev.Kind == k && ev.T1 == t0 {
			ev.T1 = t1
			return
		}
	}
	t.events = append(t.events, Event{Name: name, Cat: k.Cat(), Kind: k, T0: t0, T1: t1})
	if k != KindOverlap {
		t.last = len(t.events) - 1
	}
}

// Begin opens a structural span at the current simulated clock.
func (t *Tracer) Begin(cat, name string, args ...Arg) {
	if t == nil {
		return
	}
	t.last = -1
	t.events = append(t.events, Event{Name: name, Cat: cat, Kind: KindSpan, T0: t.now(), T1: -1, Args: args})
	t.open = append(t.open, len(t.events)-1)
}

// End closes the innermost open structural span at the current
// simulated clock, appending args to the ones given at Begin.
func (t *Tracer) End(args ...Arg) {
	if t == nil {
		return
	}
	t.last = -1
	n := len(t.open)
	if n == 0 {
		panic("trace: End without matching Begin")
	}
	idx := t.open[n-1]
	t.open = t.open[:n-1]
	ev := &t.events[idx]
	ev.T1 = t.now()
	ev.Args = append(ev.Args, args...)
}

// Finish records the rank's final ledgers; the world calls it when the
// rank's SPMD body returns.
func (t *Tracer) Finish(clock, comp, comm, overlap float64) {
	if t == nil {
		return
	}
	t.totals = Totals{Clock: clock, Comp: comp, Comm: comm, Overlap: overlap}
	t.hasTotals = true
}

// Events returns the recorded events (shared slice; callers must not
// mutate).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Recorder collects the per-rank tracers of one run plus run-level
// metadata. It is not safe for concurrent Bind/export; the world binds
// ranks serially before launching them and exports happen after Run
// returns.
type Recorder struct {
	metaKeys []string
	metaVals []string
	ranks    []*Tracer
}

// NewRecorder returns an empty Recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// SetMeta sets a run-level metadata key (algo, n, seed, mesh, ...),
// replacing any previous value. Metadata exports under otherData in
// insertion order.
func (r *Recorder) SetMeta(key, val string) {
	for i, k := range r.metaKeys {
		if k == key {
			r.metaVals[i] = val
			return
		}
	}
	r.metaKeys = append(r.metaKeys, key)
	r.metaVals = append(r.metaVals, val)
}

// Bind creates (or replaces) the tracer for rank, reading the
// simulated clock through now. A Recorder holds one run: binding rank
// 0 again discards every previously recorded rank.
func (r *Recorder) Bind(rank int, now func() float64) *Tracer {
	if rank == 0 && len(r.ranks) > 0 {
		r.ranks = r.ranks[:0]
	}
	for len(r.ranks) <= rank {
		r.ranks = append(r.ranks, nil)
	}
	t := &Tracer{rank: rank, now: now, last: -1}
	r.ranks[rank] = t
	return t
}

// Ranks returns the bound per-rank tracers (nil entries for ranks
// never bound).
func (r *Recorder) Ranks() []*Tracer { return r.ranks }
