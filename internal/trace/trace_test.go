package trace

import (
	"strings"
	"testing"
)

// synthetic builds a one-rank recorder whose ledgers are consistent:
// comp [0,1], serialized comm [1,1.5], 0.4s hidden on the coprocessor
// track, so clock = 1.5, comp = 1, comm = 0.9, overlap = 0.4.
func synthetic() (*Recorder, *float64) {
	cur := new(float64)
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return *cur })
	tr.Begin("level", "level", Arg{Key: "frontier", Val: 10})
	tr.Cost("compute", KindComp, 0, 1)
	tr.Cost("send", KindComm, 1, 1.5)
	tr.Cost("hidden", KindOverlap, 1.0, 1.4)
	*cur = 1.5
	tr.End(Arg{Key: "expand_words", Val: 7})
	tr.Finish(1.5, 1, 0.9, 0.4)
	return rec, cur
}

func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	tr.Cost("x", KindComp, 0, 1)
	tr.Begin("a", "b")
	tr.End()
	tr.Finish(1, 1, 0, 0)
	if tr.Events() != nil {
		t.Fatal("nil tracer returned events")
	}
}

func TestCostCoalescing(t *testing.T) {
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return 0 })

	// Contiguous same-name same-kind spans merge into one event.
	tr.Cost("compute", KindComp, 0, 1)
	tr.Cost("compute", KindComp, 1, 2)
	if n := len(tr.Events()); n != 1 {
		t.Fatalf("contiguous spans did not coalesce: %d events", n)
	}
	if ev := tr.Events()[0]; ev.T0 != 0 || ev.T1 != 2 {
		t.Fatalf("coalesced span is [%g,%g], want [0,2]", ev.T0, ev.T1)
	}

	// A different name breaks the run.
	tr.Cost("send", KindComm, 2, 3)
	tr.Cost("compute", KindComp, 3, 4)
	if n := len(tr.Events()); n != 3 {
		t.Fatalf("want 3 events after name change, got %d", n)
	}

	// A gap breaks the run even with matching name/kind.
	tr.Cost("compute", KindComp, 5, 6)
	if n := len(tr.Events()); n != 4 {
		t.Fatalf("gap coalesced: %d events", n)
	}

	// A structural boundary resets coalescing.
	tr.Begin("engine", "scan")
	tr.Cost("compute", KindComp, 6, 7)
	tr.End()
	if n := len(tr.Events()); n != 6 {
		t.Fatalf("cost span straddled a structural boundary: %d events", n)
	}

	// Overlap-track spans never coalesce.
	tr.Cost("hidden", KindOverlap, 0, 1)
	tr.Cost("hidden", KindOverlap, 1, 2)
	if n := len(tr.Events()); n != 8 {
		t.Fatalf("overlap spans coalesced: %d events", n)
	}

	// Zero- and negative-length spans are dropped entirely.
	tr.Cost("compute", KindComp, 7, 7)
	tr.Cost("compute", KindComp, 8, 7)
	if n := len(tr.Events()); n != 8 {
		t.Fatalf("empty cost spans were recorded: %d events", n)
	}
}

func TestEndWithoutBeginPanics(t *testing.T) {
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return 0 })
	defer func() {
		if recover() == nil {
			t.Fatal("End without Begin did not panic")
		}
	}()
	tr.End()
}

func TestWriteChromeUnclosedSpan(t *testing.T) {
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return 0 })
	tr.Begin("level", "level")
	tr.Finish(0, 0, 0, 0)
	if _, err := rec.Chrome(); err == nil || !strings.Contains(err.Error(), "unclosed") {
		t.Fatalf("want unclosed-span error, got %v", err)
	}
}

func TestWriteChromeUnfinishedRank(t *testing.T) {
	rec := NewRecorder()
	rec.Bind(0, func() float64 { return 0 })
	if _, err := rec.Chrome(); err == nil || !strings.Contains(err.Error(), "never finished") {
		t.Fatalf("want unfinished-rank error, got %v", err)
	}
}

func TestChromeRoundTrip(t *testing.T) {
	rec, _ := synthetic()
	data, err := rec.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Check(doc)
	if err != nil {
		t.Fatal(err)
	}
	if d.MaxClock != 1.5 || d.MaxComm != 0.9 || d.MaxOverlap != 0.4 {
		t.Fatalf("derived maxima %g/%g/%g, want 1.5/0.9/0.4", d.MaxClock, d.MaxComm, d.MaxOverlap)
	}
	if len(d.Levels) != 1 {
		t.Fatalf("want 1 level span, got %d", len(d.Levels))
	}
	lv := d.Levels[0]
	if lv.Args["frontier"] != 10 || lv.Args["expand_words"] != 7 {
		t.Fatalf("level args %v, want frontier=10 expand_words=7", lv.Args)
	}
	if lv.MaxS != 1.5 {
		t.Fatalf("level critical path %g, want 1.5", lv.MaxS)
	}
}

func TestSetMetaRoundTrip(t *testing.T) {
	rec, _ := synthetic()
	rec.SetMeta("algo", "bfs")
	rec.SetMeta("algo", "sssp") // replaces, not appends
	rec.SetMeta("mesh", "4x4")
	data, err := rec.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if doc.Meta["algo"] != "sssp" || doc.Meta["mesh"] != "4x4" {
		t.Fatalf("meta round-trip %v", doc.Meta)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	if _, err := Parse([]byte("not a trace")); err == nil {
		t.Fatal("garbage parsed")
	}
}

func TestCheckRejectsLedgerDrift(t *testing.T) {
	// Declared totals inconsistent with the spans: the clock claims 2.0
	// but the main track only tiles [0, 1.5].
	cur := 0.0
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return cur })
	tr.Cost("compute", KindComp, 0, 1)
	tr.Cost("send", KindComm, 1, 1.5)
	tr.Finish(2.0, 1, 0.5, 0)
	data, err := rec.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(doc); err == nil {
		t.Fatal("drifted ledgers passed the checker")
	}
}

func TestCheckRejectsMainTrackOverlap(t *testing.T) {
	// Two main-track cost spans overlapping in time: the clock cannot be
	// charged twice for the same instant.
	rec := NewRecorder()
	tr := rec.Bind(0, func() float64 { return 0 })
	tr.Cost("compute", KindComp, 0, 1)
	tr.Cost("send", KindComm, 0.5, 1.5)
	tr.Finish(1.5, 1, 0.5, 0)
	data, err := rec.Chrome()
	if err != nil {
		t.Fatal(err)
	}
	doc, err := Parse(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Check(doc); err == nil {
		t.Fatal("overlapping main-track cost spans passed the checker")
	}
}

func TestBindRankZeroDiscardsPriorRun(t *testing.T) {
	rec, _ := synthetic()
	if n := len(rec.Ranks()[0].Events()); n == 0 {
		t.Fatal("first run recorded nothing")
	}
	tr := rec.Bind(0, func() float64 { return 0 })
	if n := len(tr.Events()); n != 0 {
		t.Fatalf("rebinding rank 0 kept %d events", n)
	}
	if n := len(rec.Ranks()); n != 1 {
		t.Fatalf("rebinding rank 0 kept %d ranks", n)
	}
}
