package trace

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// tracecheck: re-derive the cost-model invariants from an exported
// trace alone, with no access to the run that produced it. A valid
// trace satisfies, per rank:
//
//  1. Main-track cost spans are non-overlapping and lie within
//     [0, clock]; because every clock advance in the comm layer is
//     covered by exactly one cost span, they tile the clock:
//     sum(comp spans) + sum(comm spans) == clock.
//  2. The ledger decomposition: sum(comp spans) == comp,
//     sum(comm spans) + sum(overlap spans) == comm,
//     sum(overlap spans) == overlap — which together re-derive the
//     PR 5 invariant clock == comp + comm - overlap, and
//     overlap <= comm.
//  3. Main-track spans nest properly: any two either are disjoint or
//     one contains the other (structural spans and coalesced cost
//     spans never partially overlap).
//  4. Every rank records the same number of level (and epoch) spans,
//     in the same order as the engine's per-level statistics.
//
// Float comparisons use a relative tolerance (Tolerance x clock) that
// absorbs the microsecond round-trip of the Chrome format and float
// summation order; the per-level word counts are integer span args and
// re-derive exactly.

// Tolerance is the relative float tolerance of Check: comparisons of
// simulated seconds must agree within Tolerance x max(1, clock).
const Tolerance = 1e-9

// PEvent is one parsed trace event, times in simulated seconds.
type PEvent struct {
	Rank int
	Tid  int
	Cat  string
	Name string
	T0   float64
	T1   float64
	Args map[string]int64
}

// Doc is a parsed trace file.
type Doc struct {
	Meta   map[string]string
	Events []PEvent        // "X" spans, file order
	Totals map[int]*Totals // per-rank final ledgers
}

type chromeEvent struct {
	Ph   string  `json:"ph"`
	Pid  int     `json:"pid"`
	Tid  int     `json:"tid"`
	Cat  string  `json:"cat"`
	Name string  `json:"name"`
	Ts   float64 `json:"ts"`
	Dur  float64 `json:"dur"`
	// Args stay raw until the phase is known: metadata events carry
	// string args, span events integer args, totals events floats.
	Args map[string]json.RawMessage `json:"args"`
}

func numArg(raw json.RawMessage) (json.Number, error) {
	var n json.Number
	if err := json.Unmarshal(raw, &n); err != nil {
		return "", err
	}
	return n, nil
}

type chromeFile struct {
	OtherData   map[string]string `json:"otherData"`
	TraceEvents []chromeEvent     `json:"traceEvents"`
}

// Parse decodes a Chrome trace-event JSON file produced by
// WriteChrome (or an equivalent layout) back into spans keyed to
// simulated seconds.
func Parse(data []byte) (*Doc, error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("trace: parse: %w", err)
	}
	doc := &Doc{Meta: f.OtherData, Totals: map[int]*Totals{}}
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			continue
		case "I":
			if ev.Name != totalsName {
				continue
			}
			tt := &Totals{}
			for _, field := range []struct {
				key string
				dst *float64
			}{
				{"clock_s", &tt.Clock}, {"comp_s", &tt.Comp}, {"comm_s", &tt.Comm}, {"overlap_s", &tt.Overlap},
			} {
				raw, ok := ev.Args[field.key]
				if !ok {
					return nil, fmt.Errorf("trace: event %d: totals missing %s", i, field.key)
				}
				v, err := numArg(raw)
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: totals %s: %w", i, field.key, err)
				}
				x, err := v.Float64()
				if err != nil {
					return nil, fmt.Errorf("trace: event %d: totals %s: %w", i, field.key, err)
				}
				*field.dst = x
			}
			if _, dup := doc.Totals[ev.Pid]; dup {
				return nil, fmt.Errorf("trace: rank %d has duplicate totals", ev.Pid)
			}
			doc.Totals[ev.Pid] = tt
		case "X":
			p := PEvent{
				Rank: ev.Pid, Tid: ev.Tid, Cat: ev.Cat, Name: ev.Name,
				T0: ev.Ts / 1e6, T1: (ev.Ts + ev.Dur) / 1e6,
			}
			if ev.Dur < 0 {
				return nil, fmt.Errorf("trace: event %d (%s): negative duration", i, ev.Name)
			}
			if len(ev.Args) > 0 {
				p.Args = make(map[string]int64, len(ev.Args))
				for k, raw := range ev.Args {
					v, err := numArg(raw)
					if err != nil {
						return nil, fmt.Errorf("trace: event %d (%s): arg %s not a number: %w", i, ev.Name, k, err)
					}
					n, err := v.Int64()
					if err != nil {
						return nil, fmt.Errorf("trace: event %d (%s): arg %s not an integer: %w", i, ev.Name, k, err)
					}
					p.Args[k] = n
				}
			}
			doc.Events = append(doc.Events, p)
		default:
			return nil, fmt.Errorf("trace: event %d: unsupported phase %q", i, ev.Ph)
		}
	}
	return doc, nil
}

// RankTotals is one rank's ledger re-derivation.
type RankTotals struct {
	// Declared ledgers from the totals marker.
	Totals
	// Re-derived from the cost spans alone.
	SumComp    float64 // compute spans on the main track
	SumComm    float64 // serialized communication spans on the main track
	SumOverlap float64 // coprocessor-track spans
}

// PhaseTotals aggregates one level or epoch across ranks: integer span
// args summed rank-wise (exact), plus the max per-rank duration (the
// phase's critical path).
type PhaseTotals struct {
	Name  string // uniform across ranks (e.g. "level", "light", "heavy")
	Ranks int    // ranks contributing a span at this index
	MaxS  float64
	Args  map[string]int64
}

// Derived is everything Check re-computed from the trace.
type Derived struct {
	Ranks  map[int]*RankTotals
	Levels []PhaseTotals // cat "level" spans, per-rank order aligned
	Epochs []PhaseTotals // cat "epoch" spans, per-rank order aligned

	// MaxClock / MaxComm / MaxOverlap are the across-rank maxima of the
	// declared ledgers — the quantities a Result reports as
	// SimTime/SimComm/SimOverlap.
	MaxClock   float64
	MaxComm    float64
	MaxOverlap float64
}

func tol(clock float64) float64 { return Tolerance * math.Max(1, clock) }

func approx(a, b, t float64) bool { return math.Abs(a-b) <= t }

// Check verifies the parsed trace against the cost-model invariants
// and returns the re-derived per-rank and per-phase aggregates. Any
// violation is an error naming the rank and rule.
func Check(doc *Doc) (*Derived, error) {
	d := &Derived{Ranks: map[int]*RankTotals{}}
	byRank := map[int][]PEvent{}
	ranks := []int{}
	for _, ev := range doc.Events {
		if _, ok := byRank[ev.Rank]; !ok {
			ranks = append(ranks, ev.Rank)
		}
		byRank[ev.Rank] = append(byRank[ev.Rank], ev)
	}
	sort.Ints(ranks)
	perRankLevels := map[int][]PEvent{}
	perRankEpochs := map[int][]PEvent{}
	for _, rank := range ranks {
		tt, ok := doc.Totals[rank]
		if !ok {
			return nil, fmt.Errorf("tracecheck: rank %d has events but no totals", rank)
		}
		rt := &RankTotals{Totals: *tt}
		d.Ranks[rank] = rt
		eps := tol(tt.Clock)

		evs := byRank[rank]
		var main []PEvent // all main-track spans, for nesting
		for _, ev := range evs {
			if ev.T1 < ev.T0 {
				return nil, fmt.Errorf("tracecheck: rank %d: span %q ends before it starts", rank, ev.Name)
			}
			switch ev.Tid {
			case TidOverlap:
				if ev.Cat != "overlap" {
					return nil, fmt.Errorf("tracecheck: rank %d: non-overlap span %q on the coprocessor track", rank, ev.Name)
				}
				rt.SumOverlap += ev.T1 - ev.T0
				continue
			case TidMain:
			default:
				return nil, fmt.Errorf("tracecheck: rank %d: span %q on unknown track %d", rank, ev.Name, ev.Tid)
			}
			main = append(main, ev)
			switch ev.Cat {
			case "comp":
				rt.SumComp += ev.T1 - ev.T0
			case "comm":
				rt.SumComm += ev.T1 - ev.T0
			case "overlap":
				return nil, fmt.Errorf("tracecheck: rank %d: overlap span %q on the main track", rank, ev.Name)
			case "level":
				perRankLevels[rank] = append(perRankLevels[rank], ev)
			case "epoch":
				perRankEpochs[rank] = append(perRankEpochs[rank], ev)
			}
			if ev.T0 < -eps || ev.T1 > tt.Clock+eps {
				return nil, fmt.Errorf("tracecheck: rank %d: span %q [%g, %g] outside [0, clock=%g]",
					rank, ev.Name, ev.T0, ev.T1, tt.Clock)
			}
		}

		// Rule 1: main-track cost spans are disjoint and tile the clock.
		var cost []PEvent
		for _, ev := range main {
			if ev.Cat == "comp" || ev.Cat == "comm" {
				cost = append(cost, ev)
			}
		}
		sort.SliceStable(cost, func(i, j int) bool { return cost[i].T0 < cost[j].T0 })
		for i := 1; i < len(cost); i++ {
			if cost[i].T0 < cost[i-1].T1-eps {
				return nil, fmt.Errorf("tracecheck: rank %d: cost spans %q and %q overlap at t=%g",
					rank, cost[i-1].Name, cost[i].Name, cost[i].T0)
			}
		}
		if !approx(rt.SumComp+rt.SumComm, tt.Clock, eps) {
			return nil, fmt.Errorf("tracecheck: rank %d: cost spans sum to %g, clock is %g (gap %g)",
				rank, rt.SumComp+rt.SumComm, tt.Clock, tt.Clock-rt.SumComp-rt.SumComm)
		}

		// Rule 2: ledger decomposition and the clock invariant.
		if !approx(rt.SumComp, tt.Comp, eps) {
			return nil, fmt.Errorf("tracecheck: rank %d: compute spans sum to %g, compTime is %g", rank, rt.SumComp, tt.Comp)
		}
		if !approx(rt.SumComm+rt.SumOverlap, tt.Comm, eps) {
			return nil, fmt.Errorf("tracecheck: rank %d: comm %g + overlap %g spans != commTime %g",
				rank, rt.SumComm, rt.SumOverlap, tt.Comm)
		}
		if !approx(rt.SumOverlap, tt.Overlap, eps) {
			return nil, fmt.Errorf("tracecheck: rank %d: overlap spans sum to %g, overlapTime is %g", rank, rt.SumOverlap, tt.Overlap)
		}
		if tt.Overlap > tt.Comm+eps {
			return nil, fmt.Errorf("tracecheck: rank %d: overlapTime %g exceeds commTime %g", rank, tt.Overlap, tt.Comm)
		}
		if !approx(tt.Clock, tt.Comp+tt.Comm-tt.Overlap, eps) {
			return nil, fmt.Errorf("tracecheck: rank %d: clock %g != comp %g + comm %g - overlap %g",
				rank, tt.Clock, tt.Comp, tt.Comm, tt.Overlap)
		}

		// Rule 3: main-track spans nest (disjoint or contained).
		nest := append([]PEvent(nil), main...)
		sort.SliceStable(nest, func(i, j int) bool {
			if nest[i].T0 != nest[j].T0 {
				return nest[i].T0 < nest[j].T0
			}
			return nest[i].T1 > nest[j].T1
		})
		var stack []PEvent
		for _, ev := range nest {
			for len(stack) > 0 && stack[len(stack)-1].T1 <= ev.T0+eps {
				stack = stack[:len(stack)-1]
			}
			if len(stack) > 0 && ev.T1 > stack[len(stack)-1].T1+eps {
				return nil, fmt.Errorf("tracecheck: rank %d: span %q [%g, %g] partially overlaps %q [%g, %g]",
					rank, ev.Name, ev.T0, ev.T1, stack[len(stack)-1].Name, stack[len(stack)-1].T0, stack[len(stack)-1].T1)
			}
			stack = append(stack, ev)
		}

		if tt.Clock > d.MaxClock {
			d.MaxClock = tt.Clock
		}
		if tt.Comm > d.MaxComm {
			d.MaxComm = tt.Comm
		}
		if tt.Overlap > d.MaxOverlap {
			d.MaxOverlap = tt.Overlap
		}
	}

	// Ranks that recorded totals but no events still bound the maxima.
	for rank, tt := range doc.Totals {
		if _, seen := d.Ranks[rank]; seen {
			continue
		}
		d.Ranks[rank] = &RankTotals{Totals: *tt}
		if tt.Clock > d.MaxClock {
			d.MaxClock = tt.Clock
		}
		if tt.Comm > d.MaxComm {
			d.MaxComm = tt.Comm
		}
		if tt.Overlap > d.MaxOverlap {
			d.MaxOverlap = tt.Overlap
		}
	}

	// Rule 4: align level/epoch spans across ranks and sum their args.
	var err error
	if d.Levels, err = alignPhases("level", ranks, perRankLevels); err != nil {
		return nil, err
	}
	if d.Epochs, err = alignPhases("epoch", ranks, perRankEpochs); err != nil {
		return nil, err
	}
	return d, nil
}

// alignPhases merges each rank's ordered cat-spans index-wise — the
// same alignment the engines' mergeStats applies to per-rank records,
// because every rank participates in every level's collectives.
func alignPhases(cat string, ranks []int, per map[int][]PEvent) ([]PhaseTotals, error) {
	n := 0
	for _, evs := range per {
		if len(evs) > n {
			n = len(evs)
		}
	}
	if n == 0 {
		return nil, nil
	}
	for _, rank := range ranks {
		if got := len(per[rank]); got != n && got != 0 {
			return nil, fmt.Errorf("tracecheck: rank %d records %d %s spans, others record %d", rank, got, cat, n)
		}
	}
	out := make([]PhaseTotals, n)
	for i := range out {
		out[i].Args = map[string]int64{}
		for _, rank := range ranks {
			evs := per[rank]
			if len(evs) == 0 {
				continue
			}
			ev := evs[i]
			if out[i].Ranks == 0 {
				out[i].Name = ev.Name
			} else if out[i].Name != ev.Name {
				return nil, fmt.Errorf("tracecheck: %s %d: rank %d names it %q, others %q", cat, i, rank, ev.Name, out[i].Name)
			}
			out[i].Ranks++
			if dur := ev.T1 - ev.T0; dur > out[i].MaxS {
				out[i].MaxS = dur
			}
			for k, v := range ev.Args {
				out[i].Args[k] += v
			}
		}
	}
	return out, nil
}
