// Package traceverify cross-checks a checked trace (trace.Check's
// re-derivation) against the Result the traced run reported. Together
// with the trace-internal invariants this closes the loop: the span
// stream alone re-derives the simulated clock decomposition AND
// matches the engine's own statistics — simulated times within the
// float round-trip tolerance, per-level/per-epoch word counts exactly
// (they travel as integer span args).
package traceverify

import (
	"fmt"
	"math"

	"repro/internal/bfs"
	"repro/internal/sssp"
	"repro/internal/trace"
)

func tol(clock float64) float64 { return trace.Tolerance * math.Max(1, clock) }

func checkSim(d *trace.Derived, simTime, simComm, simOverlap float64) error {
	eps := tol(d.MaxClock)
	if math.Abs(d.MaxClock-simTime) > eps {
		return fmt.Errorf("traceverify: trace max clock %g != Result SimTime %g", d.MaxClock, simTime)
	}
	if math.Abs(d.MaxComm-simComm) > eps {
		return fmt.Errorf("traceverify: trace max comm %g != Result SimComm %g", d.MaxComm, simComm)
	}
	if math.Abs(d.MaxOverlap-simOverlap) > eps {
		return fmt.Errorf("traceverify: trace max overlap %g != Result SimOverlap %g", d.MaxOverlap, simOverlap)
	}
	return nil
}

func wantArg(kind string, i int, args map[string]int64, key string, want int64) error {
	if got := args[key]; got != want {
		return fmt.Errorf("traceverify: %s %d: trace %s = %d, Result records %d", kind, i, key, got, want)
	}
	return nil
}

// BFS verifies a checked trace against a BFS (or multi-source BFS)
// Result: simulated time/comm/overlap maxima, the level count, each
// level's critical path, and the exact per-level word counts.
func BFS(d *trace.Derived, res *bfs.Result) error {
	if err := checkSim(d, res.SimTime, res.SimComm, res.SimOverlap); err != nil {
		return err
	}
	if len(d.Levels) != len(res.PerLevel) {
		return fmt.Errorf("traceverify: trace has %d level spans, Result has %d levels", len(d.Levels), len(res.PerLevel))
	}
	eps := tol(d.MaxClock)
	for i, pt := range d.Levels {
		ls := res.PerLevel[i]
		if math.Abs(pt.MaxS-ls.ExecS) > eps {
			return fmt.Errorf("traceverify: level %d: trace critical path %g != Result ExecS %g", i, pt.MaxS, ls.ExecS)
		}
		for _, chk := range []struct {
			key  string
			want int64
		}{
			{"frontier", ls.Frontier},
			{"expand_words", ls.ExpandWords},
			{"fold_words", ls.FoldWords},
			{"dups", ls.Dups},
			{"marked", ls.Marked},
			{"edges", ls.EdgesScanned},
			// dir is per-rank uniform, so the rank-wise sum is dir x ranks.
			{"dir", int64(ls.Direction) * int64(pt.Ranks)},
		} {
			if err := wantArg("level", i, pt.Args, chk.key, chk.want); err != nil {
				return err
			}
		}
	}
	return nil
}

// SSSP verifies a checked trace against a Δ-stepping Result: simulated
// maxima, the epoch count, each epoch's phase name and critical path,
// and the exact per-epoch word/relaxation counts.
func SSSP(d *trace.Derived, res *sssp.Result) error {
	if err := checkSim(d, res.SimTime, res.SimComm, res.SimOverlap); err != nil {
		return err
	}
	if len(d.Epochs) != len(res.PerEpoch) {
		return fmt.Errorf("traceverify: trace has %d epoch spans, Result has %d epochs", len(d.Epochs), len(res.PerEpoch))
	}
	eps := tol(d.MaxClock)
	for i, pt := range d.Epochs {
		es := res.PerEpoch[i]
		if pt.Name != es.Phase.String() {
			return fmt.Errorf("traceverify: epoch %d: trace phase %q != Result phase %q", i, pt.Name, es.Phase)
		}
		if math.Abs(pt.MaxS-es.ExecS) > eps {
			return fmt.Errorf("traceverify: epoch %d: trace critical path %g != Result ExecS %g", i, pt.MaxS, es.ExecS)
		}
		for _, chk := range []struct {
			key  string
			want int64
		}{
			// bucket is per-rank uniform, so the rank-wise sum is bucket x ranks.
			{"bucket", int64(es.Bucket) * int64(pt.Ranks)},
			{"active", es.Active},
			{"expand_words", es.ExpandWords},
			{"fold_words", es.FoldWords},
			{"relaxations", es.Relaxations},
			{"resettles", es.ReSettles},
			{"edges", es.EdgesScanned},
		} {
			if err := wantArg("epoch", i, pt.Args, chk.key, chk.want); err != nil {
				return err
			}
		}
	}
	return nil
}

// Export renders a recorder to Chrome JSON and runs the full pipeline:
// parse, invariant check, and (via the returned Derived) Result
// cross-checks. Convenience for the CLIs and tests.
func Export(rec *trace.Recorder) ([]byte, *trace.Derived, error) {
	data, err := rec.Chrome()
	if err != nil {
		return nil, nil, err
	}
	doc, err := trace.Parse(data)
	if err != nil {
		return nil, nil, err
	}
	d, err := trace.Check(doc)
	if err != nil {
		return nil, nil, err
	}
	return data, d, nil
}
