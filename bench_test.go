// Benchmarks regenerating every table and figure of the paper's
// evaluation section (§4). Each benchmark runs the corresponding
// harness experiment at a reduced scale (the full-scale runs are
// driven by cmd/bfsbench) and reports headline quantities as custom
// metrics so `go test -bench=.` yields a compact reproduction record:
//
//	simexec-s   simulated execution time of the exhibit's largest run
//	simcomm-s   simulated communication time of the same run
//	words       total message words moved
//	redund-pct  union-fold redundancy ratio
//
// Shapes — who wins, slopes, crossovers — are asserted by the unit
// tests; benchmarks record magnitudes.
package bgl

import (
	"strconv"
	"testing"

	"repro/internal/bfs"
	"repro/internal/comm"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/harness"
	"repro/internal/partition"
	"repro/internal/sssp"
)

// benchConfig keeps every exhibit under a few seconds per iteration on
// one core.
func benchConfig() harness.Config {
	return harness.Config{Scale: 0.25, MaxP: 16, Seed: 1, Searches: 1}
}

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, err := harness.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4aWeakScaling regenerates Figure 4a (weak scaling mean
// search time + communication time).
func BenchmarkFig4aWeakScaling(b *testing.B) { runExperiment(b, "fig4a") }

// BenchmarkFig4bMessageVolume regenerates Figure 4b (message volume vs
// search path length).
func BenchmarkFig4bMessageVolume(b *testing.B) { runExperiment(b, "fig4b") }

// BenchmarkFig4cBidirectional regenerates Figure 4c (bi-directional vs
// uni-directional weak scaling).
func BenchmarkFig4cBidirectional(b *testing.B) { runExperiment(b, "fig4c") }

// BenchmarkFig5StrongScaling regenerates Figure 5 (strong scaling
// speedup).
func BenchmarkFig5StrongScaling(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkTable1Topologies regenerates Table 1 (processor-topology
// comparison).
func BenchmarkTable1Topologies(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig6aVolumeByLevel regenerates Figure 6a (per-level volume,
// 1D vs 2D, k=10 and k=50).
func BenchmarkFig6aVolumeByLevel(b *testing.B) { runExperiment(b, "fig6a") }

// BenchmarkFig6bCrossover regenerates Figure 6b (1D/2D crossover
// degree).
func BenchmarkFig6bCrossover(b *testing.B) { runExperiment(b, "fig6b") }

// BenchmarkFig7Redundancy regenerates Figure 7 (union-fold redundancy
// ratio).
func BenchmarkFig7Redundancy(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkAblationMapping regenerates the §3.2.1 mapping ablation.
func BenchmarkAblationMapping(b *testing.B) { runExperiment(b, "ablation-mapping") }

// BenchmarkAblationCollectives regenerates the §3.2.2 collective
// ablation.
func BenchmarkAblationCollectives(b *testing.B) { runExperiment(b, "ablation-collective") }

// BenchmarkAblationSentCache regenerates the §2.4.3 sent-cache
// ablation.
func BenchmarkAblationSentCache(b *testing.B) { runExperiment(b, "ablation-sentcache") }

// BenchmarkAblationTermination regenerates the §4.1 tree-vs-torus
// termination ablation.
func BenchmarkAblationTermination(b *testing.B) { runExperiment(b, "ablation-termination") }

// BenchmarkAblationDirection regenerates the top-down vs
// direction-optimizing level-by-level ablation.
func BenchmarkAblationDirection(b *testing.B) { runExperiment(b, "ablation-direction") }

// BenchmarkAblationWire regenerates the wire-encoding ablation
// (sparse/dense/auto/hybrid across frontier occupancies).
func BenchmarkAblationWire(b *testing.B) { runExperiment(b, "ablation-wire") }

// BenchmarkMemScale regenerates the §2.4.1 memory-scalability exhibit.
func BenchmarkMemScale(b *testing.B) { runExperiment(b, "memscale") }

// BenchmarkAblationOverlap regenerates the synchronous-vs-overlapped
// exchange-schedule ablation (async collectives hidden under the scan).
func BenchmarkAblationOverlap(b *testing.B) { runExperiment(b, "ablation-overlap") }

// BenchmarkAblationDelta regenerates the Δ-stepping bucket-width
// sweep on the weighted Poisson workload.
func BenchmarkAblationDelta(b *testing.B) { runExperiment(b, "ablation-delta") }

// --- Core-engine micro-benchmarks -----------------------------------
// These measure the real (wall-clock) throughput of the distributed
// engine itself on this host, complementing the simulated-time
// exhibits above.

type benchFixture struct {
	g      *graph.CSR
	stores []*partition.Store2D
	world  *comm.World
	src    graph.Vertex
}

func buildBenchFixture(b *testing.B, n int, k float64, r, c int) *benchFixture {
	b.Helper()
	params := graph.Params{N: n, K: k, Seed: 9}
	g, err := graph.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := partition.NewLayout2D(n, r, c)
	if err != nil {
		b.Fatal(err)
	}
	stores, err := partition.Build2D(layout, func(fn func(u, v graph.Vertex)) error {
		return params.VisitEdges(fn)
	})
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: r * c})
	if err != nil {
		b.Fatal(err)
	}
	return &benchFixture{g: g, stores: stores, world: w, src: graph.LargestComponentVertex(g)}
}

// BenchmarkTraversal2D measures full-traversal throughput (edges/sec
// real time) of the 2D engine on a 4x4 mesh.
func BenchmarkTraversal2D(b *testing.B) {
	fx := buildBenchFixture(b, 100000, 10, 4, 4)
	b.ResetTimer()
	var last *bfs.Result
	for i := 0; i < b.N; i++ {
		res, err := bfs.Run2D(fx.world, fx.stores, bfs.DefaultOptions(fx.src))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(float64(fx.g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		b.ReportMetric(last.SimTime, "simexec-s")
		b.ReportMetric(last.SimComm, "simcomm-s")
	}
}

// benchDirection measures a full traversal of the paper's k=10
// workload at n=100k on a 4x4 mesh under one direction policy,
// reporting real throughput plus the edges-inspected and simulated-time
// deltas that direction-optimizing traversal shrinks.
func benchDirection(b *testing.B, dir bfs.Direction) {
	fx := buildBenchFixture(b, 100000, 10, 4, 4)
	opts := bfs.DefaultOptions(fx.src)
	opts.Direction = dir
	b.ResetTimer()
	var last *bfs.Result
	for i := 0; i < b.N; i++ {
		res, err := bfs.Run2D(fx.world, fx.stores, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(float64(fx.g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		b.ReportMetric(float64(last.TotalEdgesScanned), "edges-scanned")
		b.ReportMetric(float64(last.TotalExpandWords+last.TotalFoldWords), "words")
		b.ReportMetric(last.SimTime, "simexec-s")
		b.ReportMetric(last.SimComm, "simcomm-s")
	}
}

// BenchmarkDirectionTopDown is the always-top-down baseline (the
// paper's algorithm) for the direction comparison.
func BenchmarkDirectionTopDown(b *testing.B) { benchDirection(b, bfs.TopDown) }

// BenchmarkDirectionOptimizing runs the same traversal with per-level
// direction switching.
func BenchmarkDirectionOptimizing(b *testing.B) { benchDirection(b, bfs.DirectionOptimizing) }

// benchWire measures the k=10 full traversal under one frontier wire
// encoding, reporting the moved-word totals the codec shrinks.
func benchWire(b *testing.B, wire frontier.WireMode) {
	fx := buildBenchFixture(b, 100000, 10, 4, 4)
	opts := bfs.DefaultOptions(fx.src)
	opts.Wire = wire
	b.ResetTimer()
	var last *bfs.Result
	for i := 0; i < b.N; i++ {
		res, err := bfs.Run2D(fx.world, fx.stores, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(float64(fx.g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		b.ReportMetric(float64(last.TotalExpandWords+last.TotalFoldWords), "words")
		b.ReportMetric(last.SimTime, "simexec-s")
		b.ReportMetric(last.SimComm, "simcomm-s")
	}
}

// BenchmarkWireSparse is the legacy vertex-list wire baseline.
func BenchmarkWireSparse(b *testing.B) { benchWire(b, frontier.WireSparse) }

// BenchmarkWireAuto picks min(list, bitmap) per payload (PR 1).
func BenchmarkWireAuto(b *testing.B) { benchWire(b, frontier.WireAuto) }

// BenchmarkWireHybrid runs the chunked container codec.
func BenchmarkWireHybrid(b *testing.B) { benchWire(b, frontier.WireHybrid) }

// BenchmarkDeltaStepping measures distributed Δ-stepping shortest
// paths on the weighted n=100k k=10 workload at 4x4 (uniform [1,256]
// weights, auto Δ), reporting the relaxation-work and volume metrics
// the Δ sweep trades against each other.
func BenchmarkDeltaStepping(b *testing.B) {
	params := graph.Params{N: 100000, K: 10, Seed: 9}
	spec := graph.WeightSpec{Dist: graph.WeightUniform, MaxWeight: 256, Seed: 10}
	g, err := graph.GenerateWeighted(params, spec)
	if err != nil {
		b.Fatal(err)
	}
	layout, err := partition.NewLayout2D(params.N, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	stores, err := partition.Build2DWeighted(layout, g.VisitWeightedEdges)
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: 16})
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	b.ResetTimer()
	var last *sssp.Result
	for i := 0; i < b.N; i++ {
		res, err := sssp.Run2D(w, stores, sssp.DefaultOptions(src))
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	if last != nil {
		b.ReportMetric(float64(g.NumEdges())*float64(b.N)/b.Elapsed().Seconds(), "edges/s")
		b.ReportMetric(float64(last.TotalRelaxations), "relaxations")
		b.ReportMetric(float64(last.TotalReSettles), "re-settles")
		b.ReportMetric(float64(last.TotalWords()), "words")
		b.ReportMetric(last.SimTime, "simexec-s")
		b.ReportMetric(last.SimComm, "simcomm-s")
	}
}

// BenchmarkTraversal1D measures the dedicated Algorithm 1 engine.
func BenchmarkTraversal1D(b *testing.B) {
	params := graph.Params{N: 100000, K: 10, Seed: 9}
	layout, err := partition.NewLayout1D(params.N, 16)
	if err != nil {
		b.Fatal(err)
	}
	stores, err := partition.Build1D(layout, func(fn func(u, v graph.Vertex)) error {
		return params.VisitEdges(fn)
	})
	if err != nil {
		b.Fatal(err)
	}
	w, err := comm.NewWorld(comm.Config{P: 16})
	if err != nil {
		b.Fatal(err)
	}
	g, err := graph.Generate(params)
	if err != nil {
		b.Fatal(err)
	}
	src := graph.LargestComponentVertex(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bfs.Run1D(w, stores, bfs.DefaultOptions(src)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBidirectionalSearch measures the §2.3 bi-directional search
// on far-apart endpoints.
func BenchmarkBidirectionalSearch(b *testing.B) {
	fx := buildBenchFixture(b, 100000, 10, 4, 4)
	levels := graph.BFS(fx.g, fx.src)
	far := fx.src
	for v, l := range levels {
		if l != graph.Unreached && l > levels[far] {
			far = graph.Vertex(v)
		}
	}
	opts := bfs.DefaultOptions(fx.src)
	opts.Target, opts.HasTarget = far, true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bfs.RunBidirectional2D(fx.world, fx.stores, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGenerate measures the skip-sampling G(n,p) generator.
func BenchmarkGenerate(b *testing.B) {
	for _, k := range []float64{10, 100} {
		b.Run("k="+strconv.Itoa(int(k)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := graph.Generate(graph.Params{N: 100000, K: k, Seed: int64(i)}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBuild2D measures distributed-store construction.
func BenchmarkBuild2D(b *testing.B) {
	params := graph.Params{N: 100000, K: 10, Seed: 3}
	layout, err := partition.NewLayout2D(params.N, 4, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := partition.Build2D(layout, func(fn func(u, v graph.Vertex)) error {
			return params.VisitEdges(fn)
		}); err != nil {
			b.Fatal(err)
		}
	}
}
