package bgl

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// The public cancellation surface: WithContext / WithDeadline /
// WithSimBudget install a cooperative hook that every engine polls at
// its level/sweep/epoch boundaries. These tests pin the contract at
// the library boundary — typed *Canceled errors, partial results, and
// a cluster that stays fully usable afterwards.

func cancelFixture(t *testing.T) (*Cluster, *DistGraph, Vertex) {
	t.Helper()
	g, err := Generate(900, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	return cl, dg, g.LargestComponentVertex()
}

// TestWithContextCanceled: a context canceled before the run starts
// stops the traversal at its first boundary, and the *Canceled error
// carries the context's cause.
func TestWithContextCanceled(t *testing.T) {
	cl, dg, src := cancelFixture(t)
	ctx, cancel := context.WithCancelCause(context.Background())
	cancel(errors.New("caller walked away"))
	res, err := cl.BFS(dg, src, WithContext(ctx))
	var cxl *Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *Canceled", err)
	}
	if cxl.Cause == nil || !strings.Contains(cxl.Cause.Error(), "walked away") {
		t.Fatalf("canceled cause %v does not carry the context cause", cxl.Cause)
	}
	if res == nil {
		t.Fatal("canceled BFS returned no partial Result")
	}

	// The cluster is not poisoned: the same query without the context
	// completes and matches serial.
	full, err := cl.BFS(dg, src)
	if err != nil {
		t.Fatalf("clean BFS after a canceled one: %v", err)
	}
	want := dg.Graph().SerialBFS(src)
	for v, l := range want {
		if full.Levels[v] != l {
			t.Fatalf("post-cancel levels[%d] = %d, serial %d", v, full.Levels[v], l)
		}
	}
}

// TestWithDeadlineExpired: a wall deadline already in the past cancels
// at the first boundary with a message naming the deadline.
func TestWithDeadlineExpired(t *testing.T) {
	cl, dg, src := cancelFixture(t)
	_, err := cl.BFS(dg, src, WithDeadline(time.Now().Add(-time.Second)))
	var cxl *Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *Canceled", err)
	}
	if !strings.Contains(err.Error(), "wall deadline exceeded") {
		t.Fatalf("canceled error %q does not name the wall deadline", err)
	}
}

// TestWithSimBudgetPartial: the simulated-execution ceiling cancels
// mid-run; SSSP reports epochs, BFS reports levels.
func TestWithSimBudgetPartial(t *testing.T) {
	g, err := GenerateWeighted(900, 6, 5, WithMaxWeight(40))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	dg, err := cl.Distribute(g)
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	res, err := cl.SSSP(dg, src, WithSimBudget(1e-9))
	var cxl *Canceled
	if !errors.As(err, &cxl) {
		t.Fatalf("error %v is not a *Canceled", err)
	}
	if cxl.Unit != "epoch" {
		t.Fatalf("SSSP canceled unit %q, want %q", cxl.Unit, "epoch")
	}
	if !strings.Contains(err.Error(), "budget exceeded") {
		t.Fatalf("canceled error %q does not name the budget", err)
	}
	if res == nil || len(res.Dist) != g.N() {
		t.Fatalf("canceled SSSP returned no usable partial result")
	}
}

// TestHostileFaultPlanKillsRank: the hostile plan corrupts every
// attempt of every message with a tiny retry budget, so the first
// exchange deterministically exhausts its retries and the rank panic
// surfaces as the world's recovered error — the failure mode graphd's
// replica supervision drills against. The world recovers: a clean
// follow-up run completes.
func TestHostileFaultPlanKillsRank(t *testing.T) {
	cl, dg, src := cancelFixture(t)
	res, err := cl.BFS(dg, src, WithFault(HostileFaultPlan(3)))
	if err == nil {
		t.Fatal("no error from a plan that corrupts every attempt")
	}
	if !strings.Contains(err.Error(), "exhausted the retry budget") {
		t.Fatalf("hostile-plan error %q does not name the exhausted budget", err)
	}
	var cxl *Canceled
	if errors.As(err, &cxl) {
		t.Fatalf("hostile-plan failure decoded as a cooperative cancel: %v", err)
	}
	_ = res

	full, err := cl.BFS(dg, src)
	if err != nil {
		t.Fatalf("clean BFS after the hostile run: %v", err)
	}
	want := dg.Graph().SerialBFS(src)
	for v, l := range want {
		if full.Levels[v] != l {
			t.Fatalf("post-hostile levels[%d] = %d, serial %d", v, full.Levels[v], l)
		}
	}
}
