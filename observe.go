package bgl

import (
	"repro/internal/metrics"
	"repro/internal/trace"
)

// Trace is a simulated-clock span recorder. Pass one to a run via
// WithTrace and every simulated-clock charge (compute, send, receive,
// barrier, hidden coprocessor transfers) plus every collective round
// and engine phase is recorded as a span against the run's simulated
// clock — recording is observation only, the clock is identical with
// and without it. Export with Trace.Chrome / Trace.WriteChrome: the
// output is Chrome trace-event JSON, loadable in Perfetto
// (https://ui.perfetto.dev) with one process per rank and separate
// main/coprocessor tracks. A Trace holds one run; reusing it across
// runs keeps only the last.
type Trace = trace.Recorder

// NewTrace returns an empty span recorder for WithTrace.
func NewTrace() *Trace { return trace.NewRecorder() }

// Metrics is a counter/gauge/histogram registry. Pass one to runs via
// WithMetrics and each finished run publishes its statistics — words
// moved per codec container, direction switches, relaxations,
// re-settles, hidden-communication seconds — into it. Counters
// accumulate across runs sharing a registry; gauges hold the last
// run's values. Snapshot with Metrics.Text or Metrics.JSON (both
// deterministic, sorted by name).
type Metrics = metrics.Registry

// NewMetrics returns an empty registry for WithMetrics.
func NewMetrics() *Metrics { return metrics.NewRegistry() }

// WithTrace records the run's simulated-clock spans into t (every
// algorithm family). Tracing does not alter the simulated clock.
func WithTrace(t *Trace) Option {
	return func(c *searchConfig) { c.bfs.Trace = t; c.sssp.Trace = t }
}

// WithMetrics publishes the run's statistics into m after the run
// completes (every algorithm family).
func WithMetrics(m *Metrics) Option {
	return func(c *searchConfig) { c.bfs.Metrics = m; c.sssp.Metrics = m }
}
