package bgl

import (
	"reflect"
	"strings"
	"testing"
)

var allPartitions = []Partition{Part2D, Part1DRow, Part1DCol}

// TestBFSAllPartitionings runs the same full traversal through the one
// public entry point on all three partitionings and checks every
// result against the serial oracle.
func TestBFSAllPartitionings(t *testing.T) {
	g, err := Generate(1500, 6, 44)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	serial := g.SerialBFS(src)
	for _, part := range allPartitions {
		for _, wire := range []WireMode{WireSparse, WireAuto, WireHybrid} {
			dg, err := cl.Distribute(g, WithPartition(part))
			if err != nil {
				t.Fatalf("%s: %v", part, err)
			}
			if dg.Partition() != part {
				t.Fatalf("DistGraph reports %s, want %s", dg.Partition(), part)
			}
			res, err := cl.BFS(dg, src, WithWire(wire))
			if err != nil {
				t.Fatalf("%s wire=%v: %v", part, wire, err)
			}
			for v, want := range serial {
				if res.Levels[v] != want {
					t.Fatalf("%s wire=%v: level[%d] = %d, want %d", part, wire, v, res.Levels[v], want)
				}
			}
		}
	}
}

// TestSearchEntryPointsAllPartitionings exercises Search, BiSearch and
// Path on every partitioning.
func TestSearchEntryPointsAllPartitionings(t *testing.T) {
	g, err := Generate(1200, 6, 45)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	s := g.LargestComponentVertex()
	serial := g.SerialBFS(s)
	var far Vertex
	for v, l := range serial {
		if l != Unreached && l > serial[far] {
			far = Vertex(v)
		}
	}
	for _, part := range allPartitions {
		dg, err := cl.Distribute(g, WithPartition(part))
		if err != nil {
			t.Fatal(err)
		}
		uni, err := cl.Search(dg, s, far)
		if err != nil {
			t.Fatalf("%s Search: %v", part, err)
		}
		bi, err := cl.BiSearch(dg, s, far)
		if err != nil {
			t.Fatalf("%s BiSearch: %v", part, err)
		}
		if !uni.Found || uni.Distance != serial[far] {
			t.Fatalf("%s Search distance %d found=%v, want %d", part, uni.Distance, uni.Found, serial[far])
		}
		if !bi.Found || bi.Distance != serial[far] {
			t.Fatalf("%s BiSearch distance %d found=%v, want %d", part, bi.Distance, bi.Found, serial[far])
		}
		path, pres, err := cl.Path(dg, s, far)
		if err != nil {
			t.Fatalf("%s Path: %v", part, err)
		}
		if int32(len(path)-1) != serial[far] || pres.Distance != serial[far] {
			t.Fatalf("%s Path length %d, want %d", part, len(path)-1, serial[far])
		}
	}
}

// TestSSSPAllPartitionings runs Δ-stepping on all three partitionings
// against the serial Dijkstra oracle.
func TestSSSPAllPartitionings(t *testing.T) {
	g, err := GenerateWeighted(1200, 6, 46, WithMaxWeight(64))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := g.LargestComponentVertex()
	want := g.SerialDijkstra(src)
	for _, part := range allPartitions {
		dg, err := cl.Distribute(g, WithPartition(part))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.SSSP(dg, src, WithWire(WireHybrid))
		if err != nil {
			t.Fatalf("%s: %v", part, err)
		}
		for v, d := range res.Dist {
			if d != want[v] {
				t.Fatalf("%s: dist[%d] = %d, serial dijkstra %d", part, v, d, want[v])
			}
		}
	}
}

// TestMultiBFSAllPartitionings validates the batched multi-source
// entry point lane-by-lane against the serial oracle on every
// partitioning.
func TestMultiBFSAllPartitionings(t *testing.T) {
	g, err := Generate(1000, 5, 47)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 2})
	if err != nil {
		t.Fatal(err)
	}
	sources := []Vertex{0, 17, g.LargestComponentVertex(), 999}
	for _, part := range allPartitions {
		dg, err := cl.Distribute(g, WithPartition(part))
		if err != nil {
			t.Fatal(err)
		}
		res, err := cl.MultiBFS(dg, sources, WithWire(WireAuto))
		if err != nil {
			t.Fatalf("%s: %v", part, err)
		}
		if res.B != len(sources) {
			t.Fatalf("%s: %d lanes, want %d", part, res.B, len(sources))
		}
		for lane, src := range sources {
			want := g.SerialBFS(src)
			for v, l := range want {
				if res.LaneLevels[lane][v] != l {
					t.Fatalf("%s lane %d: level[%d] = %d, want %d",
						part, lane, v, res.LaneLevels[lane][v], l)
				}
			}
		}
	}
	dg, _ := cl.Distribute(g)
	if _, err := cl.MultiBFS(dg, nil); err == nil {
		t.Error("empty source batch accepted")
	}
	if _, err := cl.MultiBFS(dg, make([]Vertex, MaxLanes+1)); err == nil {
		t.Error("oversized source batch accepted")
	}
}

// TestDistributeValidation checks the descriptive error when the mesh
// has more ranks than the graph has vertices, on every partitioning.
func TestDistributeValidation(t *testing.T) {
	g, err := FromEdges(4, [][2]Vertex{{0, 1}, {1, 2}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := NewCluster(ClusterConfig{R: 2, C: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range allPartitions {
		_, err := cl.Distribute(g, WithPartition(part))
		if err == nil {
			t.Fatalf("%s: 2x4 mesh over a 4-vertex graph accepted", part)
		}
		for _, want := range []string{"2x4", "4"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%s: error %q does not name %q", part, err, want)
			}
		}
	}
	if _, err := cl.Distribute(g, WithPartition(Partition(99))); err == nil {
		t.Error("unknown partitioning accepted")
	}
	if got := Partition(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown partition String() = %q", got)
	}
}

// TestDeprecatedAliasEquivalence proves every deprecated option alias
// produces exactly the configuration of its unified spelling.
func TestDeprecatedAliasEquivalence(t *testing.T) {
	cases := []struct {
		name     string
		old, new Option
	}{
		{"WithFrontierWire", WithFrontierWire(WireHybrid), WithWire(WireHybrid)},
		{"WithSSSPWire", WithSSSPWire(WireDense), WithWire(WireDense)},
		{"WithFrontierOccupancy", WithFrontierOccupancy(0.07), WithOccupancy(0.07)},
		{"WithSSSPFrontierOccupancy", WithSSSPFrontierOccupancy(0.2), WithOccupancy(0.2)},
		{"WithSSSPChunkWords", WithSSSPChunkWords(512), WithChunkWords(512)},
	}
	for _, tc := range cases {
		a := newSearchConfig(5)
		b := newSearchConfig(5)
		tc.old(&a)
		tc.new(&b)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: alias config %+v differs from unified %+v", tc.name, a, b)
		}
		base := newSearchConfig(5)
		if reflect.DeepEqual(a, base) {
			t.Errorf("%s: alias was a no-op", tc.name)
		}
	}
	// SSSPOption must remain assignable from the unified Option.
	var _ SSSPOption = WithWire(WireAuto)
}

// TestSharedOptionsReachBothFamilies checks the unified knobs land in
// both option families while family-specific ones stay put.
func TestSharedOptionsReachBothFamilies(t *testing.T) {
	cfg := newSearchConfig(3)
	cfg.apply([]Option{WithWire(WireHybrid), WithChunkWords(777), WithOccupancy(0.11), WithDelta(9), WithDirection(BottomUp)})
	if cfg.bfs.Wire != WireHybrid || cfg.sssp.Wire != WireHybrid {
		t.Error("WithWire did not reach both families")
	}
	if cfg.bfs.ChunkWords != 777 || cfg.sssp.ChunkWords != 777 {
		t.Error("WithChunkWords did not reach both families")
	}
	if cfg.bfs.FrontierOccupancy != 0.11 || cfg.sssp.FrontierOccupancy != 0.11 {
		t.Error("WithOccupancy did not reach both families")
	}
	if cfg.sssp.Delta != 9 {
		t.Error("WithDelta lost")
	}
	if cfg.bfs.Direction != BottomUp {
		t.Error("WithDirection lost")
	}
}
